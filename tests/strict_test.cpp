// Tests for simsan strict-effects mode (--simsan-strict): observed
// simulated-memory touches checked against declared MemEffect
// footprints.
//
// Four layers of coverage:
//   1. Randomized property tests of the range primitives strict mode
//      leans on: StridedRange overlap / totalElements / envelopeEnd
//      against a naive expand-to-byte-set reference.
//   2. Unit tests of the three shadow recorders (kernel scopes, put
//      trackers, collective trackers) and mergeInto.
//   3. Certification: the shipped retrievers — plain, cached, faulted,
//      and serving — run strict-clean at 2, 4, and 8 GPUs, in
//      timing-only and (plain) functional mode.
//   4. Seeded under-declared bugs: a kernel whose functional body
//      touches an undeclared buffer, and a fused PGAS kernel that omits
//      one destination's put declaration, must each fail with a report
//      naming the kernel and the escaped range/destination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "core/registry.hpp"
#include "core/retriever.hpp"
#include "emb/lookup_kernel.hpp"
#include "emb/workload.hpp"
#include "engine/scenario_runner.hpp"
#include "engine/serving_runner.hpp"
#include "fault/plan.hpp"
#include "gpu/kernel.hpp"
#include "gpu/system.hpp"
#include "pgas/runtime.hpp"
#include "simsan/checker.hpp"
#include "simsan/strict.hpp"

namespace pgasemb {
namespace {

using simsan::AccessKind;
using simsan::MemEffect;
using simsan::StridedRange;
using simsan::StrictEffects;

// ---------------------------------------------------------------------------
// 1. Property tests: StridedRange vs a naive element-set reference
// ---------------------------------------------------------------------------

/// Naive reference: the exact element set a range covers.
std::vector<std::int64_t> expand(const StridedRange& r) {
  std::vector<std::int64_t> out;
  if (r.empty()) return out;
  for (std::int64_t k = 0; k < r.count; ++k) {
    const std::int64_t run = r.begin + (r.count > 1 ? k * r.stride : 0);
    for (std::int64_t j = 0; j < r.len; ++j) out.push_back(run + j);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool setsIntersect(const std::vector<std::int64_t>& a,
                   const std::vector<std::int64_t>& b) {
  std::vector<std::int64_t> both;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(both));
  return !both.empty();
}

/// A random well-formed range (runs never overlap: stride >= len when
/// count > 1), occasionally degenerate (empty).
StridedRange randomRange(std::mt19937& rng) {
  std::uniform_int_distribution<std::int64_t> begin_d(0, 40);
  std::uniform_int_distribution<std::int64_t> len_d(0, 6);  // 0 => empty
  std::uniform_int_distribution<std::int64_t> count_d(1, 5);
  std::uniform_int_distribution<std::int64_t> pad_d(0, 6);
  StridedRange r;
  r.begin = begin_d(rng);
  r.len = len_d(rng);
  r.count = count_d(rng);
  r.stride = r.count > 1 ? r.len + pad_d(rng) : 0;
  return r;
}

TEST(StridedRangePropertyTest, OverlapMatchesByteSetReference) {
  std::mt19937 rng(0x5ee1);
  for (int iter = 0; iter < 4000; ++iter) {
    const StridedRange a = randomRange(rng);
    const StridedRange b = randomRange(rng);
    const auto ea = expand(a);
    const auto eb = expand(b);
    const bool expected = setsIntersect(ea, eb);
    EXPECT_EQ(overlaps(a, b), expected)
        << a.toString() << " vs " << b.toString();
    // Overlap is symmetric.
    EXPECT_EQ(overlaps(b, a), overlaps(a, b))
        << a.toString() << " vs " << b.toString();
  }
}

TEST(StridedRangePropertyTest, TotalElementsMatchesByteSetReference) {
  std::mt19937 rng(0xfeed);
  for (int iter = 0; iter < 2000; ++iter) {
    const StridedRange r = randomRange(rng);
    auto elems = expand(r);
    // Well-formed runs are disjoint, so the expansion has no duplicates
    // and totalElements is an exact element count (the byte-budget
    // arithmetic in the put/collective trackers depends on this).
    EXPECT_TRUE(std::adjacent_find(elems.begin(), elems.end()) ==
                elems.end())
        << r.toString();
    EXPECT_EQ(r.totalElements(), static_cast<std::int64_t>(elems.size()))
        << r.toString();
    if (!elems.empty()) {
      EXPECT_EQ(r.envelopeEnd(), elems.back() + 1) << r.toString();
    }
  }
}

TEST(StridedRangePropertyTest, ContiguousIsTheSingleRunSpecialCase) {
  std::mt19937 rng(0xabcd);
  for (int iter = 0; iter < 500; ++iter) {
    std::uniform_int_distribution<std::int64_t> d(0, 64);
    const std::int64_t begin = d(rng);
    const std::int64_t len = d(rng);
    const StridedRange c = StridedRange::contiguous(begin, len);
    EXPECT_EQ(c.count, 1);
    EXPECT_EQ(c.totalElements(), len > 0 ? len : 0);
    if (len > 0) {
      EXPECT_EQ(c.envelopeEnd(), begin + len);
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Unit tests of the shadow recorders
// ---------------------------------------------------------------------------

std::string allMessages(const simsan::Summary& s) {
  std::string out;
  for (const auto& v : s.violations) out += v.message + "\n";
  return out;
}

simsan::Summary merged(const StrictEffects& strict) {
  simsan::Summary s;
  strict.mergeInto(s);
  return s;
}

TEST(StrictKernelScopeTest, CoveredTouchIsClean) {
  StrictEffects strict;
  const std::vector<MemEffect> effects = {
      {0, StridedRange::contiguous(0, 32), AccessKind::kWrite, ""}};
  const std::vector<MemEffect> puts;
  strict.beginKernel("k", effects, puts);
  strict.touch(0, 8, 4);
  strict.touch(0, 0, 32);
  strict.endKernel();
  EXPECT_EQ(strict.findings(), 0);
}

TEST(StrictKernelScopeTest, OverlapCoverageIsKindInsensitive) {
  // A read-declared effect covers a mutable-span touch: touches carry
  // no kind (span() materialization), so coverage is overlap-only.
  StrictEffects strict;
  const std::vector<MemEffect> effects = {
      {0, StridedRange::contiguous(0, 32), AccessKind::kRead, ""}};
  const std::vector<MemEffect> puts;
  strict.beginKernel("k", effects, puts);
  strict.touch(0, 16, 8);
  strict.endKernel();
  EXPECT_EQ(strict.findings(), 0);
}

TEST(StrictKernelScopeTest, EscapedTouchNamesKernelAndRange) {
  StrictEffects strict;
  const std::vector<MemEffect> effects = {
      {0, StridedRange::contiguous(0, 32), AccessKind::kWrite, ""}};
  const std::vector<MemEffect> puts;
  strict.beginKernel("emb_rogue", effects, puts);
  strict.touch(0, 64, 16);  // disjoint from the declared [0, 32)
  strict.endKernel();
  EXPECT_EQ(strict.findings(), 1);
  const auto s = merged(strict);
  EXPECT_EQ(s.undeclared_effects, 1);
  EXPECT_FALSE(s.clean());
  const std::string msgs = allMessages(s);
  EXPECT_NE(msgs.find("kernel emb_rogue"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("[64, 80)"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("no declared mem_effect"), std::string::npos) << msgs;
}

TEST(StrictKernelScopeTest, WrongDeviceIsAnEscape) {
  StrictEffects strict;
  const std::vector<MemEffect> effects = {
      {0, StridedRange::contiguous(0, 32), AccessKind::kWrite, ""}};
  const std::vector<MemEffect> puts;
  strict.beginKernel("k", effects, puts);
  strict.touch(1, 0, 32);  // right range, wrong device
  strict.endKernel();
  EXPECT_EQ(strict.findings(), 1);
}

TEST(StrictKernelScopeTest, PutEffectsAlsoCover) {
  StrictEffects strict;
  const std::vector<MemEffect> effects;
  const std::vector<MemEffect> puts = {
      {2, StridedRange::contiguous(100, 50), AccessKind::kRemoteWrite, ""}};
  strict.beginKernel("k", effects, puts);
  strict.touch(2, 120, 10);
  strict.endKernel();
  EXPECT_EQ(strict.findings(), 0);
}

TEST(StrictKernelScopeTest, RepeatedEscapeReportedOncePerRange) {
  StrictEffects strict;
  const std::vector<MemEffect> none;
  for (int batch = 0; batch < 3; ++batch) {
    strict.beginKernel("k", none, none);
    strict.touch(0, 0, 8);
    strict.endKernel();
  }
  EXPECT_EQ(strict.findings(), 1);
}

TEST(StrictKernelScopeTest, TouchOutsideAKernelScopeIsIgnored) {
  // Host-side staging/verification reads materialize spans too; only
  // in-kernel touches are checked.
  StrictEffects strict;
  strict.touch(0, 0, 128);
  EXPECT_EQ(strict.findings(), 0);
}

TEST(StrictPutTrackerTest, WithinBudgetIsClean) {
  StrictEffects strict;
  const std::vector<MemEffect> declared = {
      {1, StridedRange::contiguous(0, 16), AccessKind::kRemoteWrite, ""}};
  auto tracker = strict.trackPuts("emb_fused", declared);
  tracker->flow(1, 32);  // 8 of the declared 16 elements
  tracker->flow(1, 32);  // exactly at the 64 B budget now
  EXPECT_EQ(strict.findings(), 0);
}

TEST(StrictPutTrackerTest, UndeclaredDestinationNamesKernel) {
  StrictEffects strict;
  const std::vector<MemEffect> declared = {
      {1, StridedRange::contiguous(0, 16), AccessKind::kRemoteWrite, ""}};
  auto tracker = strict.trackPuts("emb_fused", declared);
  tracker->flow(3, 64);
  EXPECT_EQ(strict.findings(), 1);
  const std::string msgs = allMessages(merged(strict));
  EXPECT_NE(msgs.find("kernel emb_fused"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("gpu3"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("no declared put effect"), std::string::npos) << msgs;
}

TEST(StrictPutTrackerTest, BudgetOverrunNamesDeclaredFootprint) {
  StrictEffects strict;
  const std::vector<MemEffect> declared = {
      {1, StridedRange::contiguous(0, 16), AccessKind::kRemoteWrite, ""}};
  auto tracker = strict.trackPuts("emb_fused", declared);
  tracker->flow(1, 65);  // one byte past the 16 * 4 B budget
  EXPECT_EQ(strict.findings(), 1);
  const std::string msgs = allMessages(merged(strict));
  EXPECT_NE(msgs.find("escaping the declared footprint"), std::string::npos)
      << msgs;
  EXPECT_NE(msgs.find("[0, 16)"), std::string::npos) << msgs;
  // Reported once, not once per further flow.
  tracker->flow(1, 1000);
  EXPECT_EQ(strict.findings(), 1);
}

TEST(StrictCollectiveTrackerTest, ControlPlaneTransfersAreExempt) {
  StrictEffects strict;
  auto tracker = strict.trackCollective("barrier", {}, {});
  tracker->transfer(0, 1, StrictEffects::kControlPlaneBytes);
  EXPECT_EQ(strict.findings(), 0);
}

TEST(StrictCollectiveTrackerTest, PayloadWithoutDeclaredMemoryIsFlagged) {
  StrictEffects strict;
  auto tracker = strict.trackCollective("all_to_all_single", {}, {});
  tracker->transfer(0, 1, 1024);
  EXPECT_EQ(strict.findings(), 1);
  const std::string msgs = allMessages(merged(strict));
  EXPECT_NE(msgs.find("collective all_to_all_single"), std::string::npos)
      << msgs;
  EXPECT_NE(msgs.find("no declared CollectiveMemory"), std::string::npos)
      << msgs;
}

TEST(StrictCollectiveTrackerTest, PerRankBudgetOverrunIsFlagged) {
  StrictEffects strict;
  // Rank 0 may send 16 elements (64 B); rank 1 may receive the same.
  std::vector<MemEffect> send = {
      {0, StridedRange::contiguous(0, 16), AccessKind::kRead, ""}};
  std::vector<MemEffect> recv = {
      {1, StridedRange::contiguous(0, 16), AccessKind::kWrite, ""}};
  auto tracker = strict.trackCollective("all_to_all_single", std::move(send),
                                        std::move(recv));
  tracker->transfer(0, 1, 64);
  EXPECT_EQ(strict.findings(), 0);
  tracker->transfer(0, 1, 64);  // double the declared staging budget
  EXPECT_GT(strict.findings(), 0);
  const std::string msgs = allMessages(merged(strict));
  EXPECT_NE(msgs.find("escaping the declared"), std::string::npos) << msgs;
}

TEST(StrictMergeTest, FindingsFoldIntoTheCheckerSummary) {
  StrictEffects strict;
  const std::vector<MemEffect> none;
  strict.beginKernel("k", none, none);
  strict.touch(0, 0, 8);
  strict.endKernel();

  simsan::Checker checker;
  auto summary = checker.summary();
  EXPECT_TRUE(summary.clean());
  strict.mergeInto(summary);
  EXPECT_FALSE(summary.clean());
  EXPECT_EQ(summary.undeclared_effects, 1);
  EXPECT_EQ(summary.violations_total, 1u);
  EXPECT_NE(summary.report().find("1 undeclared effect(s)"),
            std::string::npos)
      << summary.report();
}

// ---------------------------------------------------------------------------
// 3. System-level: mutable span() inside a kernel body is recorded
// ---------------------------------------------------------------------------

TEST(StrictSystemTest, UndeclaredFunctionalTouchIsFlagged) {
  simsan::Checker checker;
  StrictEffects strict;
  gpu::SystemConfig cfg;
  cfg.num_gpus = 1;
  cfg.memory_capacity_bytes = 1024 * 4;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.sanitizer = &checker;
  cfg.strict_effects = &strict;
  gpu::MultiGpuSystem sys(cfg);
  auto buf = sys.device(0).alloc(16);

  gpu::KernelDesc desc;
  desc.name = "rogue_touch";
  desc.duration = SimTime::us(1.0);
  desc.functional_body = [&buf] { buf.span()[0] = 1.0f; };
  // BUG: no mem_effects declared for the buffer the body writes.
  sys.launchKernel(0, std::move(desc));
  sys.syncAll();

  EXPECT_EQ(strict.findings(), 1);
  const std::string msgs = allMessages(merged(strict));
  EXPECT_NE(msgs.find("kernel rogue_touch"), std::string::npos) << msgs;
  sys.device(0).free(buf);
}

TEST(StrictSystemTest, DeclaredFunctionalTouchIsClean) {
  simsan::Checker checker;
  StrictEffects strict;
  gpu::SystemConfig cfg;
  cfg.num_gpus = 1;
  cfg.memory_capacity_bytes = 1024 * 4;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.sanitizer = &checker;
  cfg.strict_effects = &strict;
  gpu::MultiGpuSystem sys(cfg);
  auto buf = sys.device(0).alloc(16);

  gpu::KernelDesc desc;
  desc.name = "declared_touch";
  desc.duration = SimTime::us(1.0);
  desc.mem_effects.push_back(
      {0, StridedRange::contiguous(buf.offset(), buf.size()),
       AccessKind::kWrite, ""});
  desc.functional_body = [&buf] { buf.span()[0] = 1.0f; };
  sys.launchKernel(0, std::move(desc));
  sys.syncAll();

  EXPECT_EQ(strict.findings(), 0);
  sys.device(0).free(buf);
}

// ---------------------------------------------------------------------------
// 4. Certification: shipped retrievers are strict-clean at 2/4/8 GPUs
// ---------------------------------------------------------------------------

engine::ExperimentConfig tinyStrictConfig(int gpus) {
  engine::ExperimentConfig cfg;
  cfg.layer = emb::tinyLayerSpec();
  cfg.num_gpus = gpus;
  cfg.num_batches = 3;
  cfg.pgas_slices = 6;
  cfg.simsan_strict = true;  // implies simsan
  return cfg;
}

void expectStrictClean(const engine::ExperimentConfig& cfg,
                       const std::string& retriever) {
  engine::ScenarioRunner runner(cfg);
  const auto result = runner.run(retriever);
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_TRUE(result.sanitizer->clean()) << result.sanitizer->report();
  EXPECT_EQ(result.sanitizer->undeclared_effects, 0)
      << result.sanitizer->report();
}

class StrictCertificationTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(StrictCertificationTest, PlainTimingOnly) {
  const auto& [name, gpus] = GetParam();
  expectStrictClean(tinyStrictConfig(gpus), name);
}

TEST_P(StrictCertificationTest, PlainFunctional) {
  const auto& [name, gpus] = GetParam();
  if (name == "nccl_pipelined") {
    GTEST_SKIP() << "the pipelined baseline is timing-only by design "
                    "(recycles buffers across in-flight batches)";
  }
  auto cfg = tinyStrictConfig(gpus);
  cfg.mode = gpu::ExecutionMode::kFunctional;
  expectStrictClean(cfg, name);
}

TEST_P(StrictCertificationTest, Cached) {
  const auto& [name, gpus] = GetParam();
  auto cfg = tinyStrictConfig(gpus);
  cfg.cache_rows = 12;
  cfg.layer.zipf_alpha = 0.9;
  expectStrictClean(cfg, name);
}

TEST_P(StrictCertificationTest, Faulted) {
  const auto& [name, gpus] = GetParam();
  auto cfg = tinyStrictConfig(gpus);
  cfg.faults = fault::FaultPlan::parse("link-degrade:*:0.5,straggler:0:2", 7);
  expectStrictClean(cfg, name);
}

TEST_P(StrictCertificationTest, Serving) {
  const auto& [name, gpus] = GetParam();
  auto cfg = tinyStrictConfig(gpus);
  cfg.serving.num_queries = 80;
  cfg.serving.qps = 50000.0;
  cfg.serving.query_size = emb::parseQuerySizeSpec("uniform:1-16");
  cfg.serving.max_wait_ms = 0.2;
  engine::ServingRunner runner(cfg);
  const auto result = runner.run(name);
  ASSERT_TRUE(result.serving.has_value());
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_TRUE(result.sanitizer->clean()) << result.sanitizer->report();
  EXPECT_EQ(result.sanitizer->undeclared_effects, 0)
      << result.sanitizer->report();
}

INSTANTIATE_TEST_SUITE_P(
    AllRetrievers, StrictCertificationTest,
    ::testing::Combine(::testing::Values("nccl_collective", "pgas_fused",
                                         "nccl_pipelined"),
                       ::testing::Values(2, 4, 8)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "gpus";
    });

TEST(StrictCertificationTest, StrictImpliesSimsan) {
  // simsan_strict alone must still attach the checker and produce a
  // summary (the flag implies --simsan).
  auto cfg = tinyStrictConfig(2);
  EXPECT_FALSE(cfg.simsan);
  engine::ScenarioRunner runner(cfg);
  const auto result = runner.run("nccl_collective");
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_GT(result.sanitizer->accesses_logged, 0u);
}

// ---------------------------------------------------------------------------
// 5. Seeded under-declared bugs the strict mode must catch by name
// ---------------------------------------------------------------------------

/// Retriever whose kernel body writes the output tensor while declaring
/// only its send-staging effect — the output write is hidden from
/// simsan, exactly the under-declaration strict mode exists to catch.
class BrokenUndeclaredTouch final : public core::EmbeddingRetriever {
 public:
  explicit BrokenUndeclaredTouch(emb::ShardedEmbeddingLayer& layer)
      : layer_(layer) {
    auto& system = layer.system();
    const auto& sh = layer.sharding();
    const int dim = layer.dim();
    for (int g = 0; g < system.numGpus(); ++g) {
      auto& dev = system.device(g);
      send_.push_back(dev.alloc(emb::sendBufferElements(sh, g, dim)));
      out_.push_back(dev.alloc(sh.outputElements(g, dim)));
    }
  }

  ~BrokenUndeclaredTouch() override {
    auto& system = layer_.system();
    for (int g = system.numGpus() - 1; g >= 0; --g) {
      system.device(g).free(out_[static_cast<std::size_t>(g)]);
      system.device(g).free(send_[static_cast<std::size_t>(g)]);
    }
  }

  std::string name() const override { return "broken_undeclared_touch"; }
  gpu::DeviceBuffer& output(int gpu) override {
    return out_[static_cast<std::size_t>(gpu)];
  }

  core::BatchTiming runBatch(const emb::SparseBatch& batch) override {
    (void)batch;
    auto& system = layer_.system();
    const int p = system.numGpus();
    const SimTime t0 = system.hostNow();
    for (int g = 0; g < p; ++g) {
      auto& out = out_[static_cast<std::size_t>(g)];
      gpu::KernelDesc desc;
      desc.name = "emb_rogue_lookup";
      desc.duration = SimTime::us(2.0);
      // Declares the staging write only...
      desc.mem_effects.push_back(
          {g,
           StridedRange::contiguous(send_[static_cast<std::size_t>(g)].offset(),
                                    send_[static_cast<std::size_t>(g)].size()),
           AccessKind::kWrite, ""});
      // ...but the body also writes the (undeclared) output tensor.
      if (out.backed()) {
        desc.functional_body = [&out] { out.span()[0] = 1.0f; };
      }
      system.launchKernel(g, std::move(desc));
    }
    core::BatchTiming timing;
    timing.total = system.syncAll() - t0;
    return timing;
  }

 private:
  emb::ShardedEmbeddingLayer& layer_;
  std::vector<gpu::DeviceBuffer> send_, out_;
};

const core::RetrieverRegistrar kBrokenTouchRegistrar{
    "broken_undeclared_touch",
    [](const core::SystemContext& ctx)
        -> std::unique_ptr<core::EmbeddingRetriever> {
      return std::make_unique<BrokenUndeclaredTouch>(ctx.layer);
    }};

TEST(StrictSeededBugTest, UndeclaredKernelTouchFailsNamingKernelAndRange) {
  auto cfg = tinyStrictConfig(2);
  cfg.mode = gpu::ExecutionMode::kFunctional;
  engine::ScenarioRunner runner(cfg);
  const auto result = runner.run("broken_undeclared_touch");
  ASSERT_TRUE(result.sanitizer.has_value());
  const auto& s = *result.sanitizer;
  EXPECT_FALSE(s.clean());
  EXPECT_GT(s.undeclared_effects, 0) << s.report();
  const std::string msgs = allMessages(s);
  EXPECT_NE(msgs.find("kernel emb_rogue_lookup"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("no declared mem_effect covering that range"),
            std::string::npos)
      << msgs;
  // The report carries the concrete escaped range: "touched gpuN [a, b)".
  EXPECT_NE(msgs.find("touched gpu"), std::string::npos) << msgs;
}

/// Fused PGAS retriever that declares its remote put footprint for every
/// destination except the last one — flows to that GPU escape the
/// declaration.
class BrokenUnderdeclaredPut final : public core::EmbeddingRetriever {
 public:
  BrokenUnderdeclaredPut(emb::ShardedEmbeddingLayer& layer,
                         pgas::PgasRuntime& runtime, int slices)
      : layer_(layer), runtime_(runtime), slices_(slices) {
    auto& system = layer.system();
    const auto& sh = layer.sharding();
    const int dim = layer.dim();
    std::int64_t max_elements = 0;
    for (int g = 0; g < system.numGpus(); ++g) {
      max_elements = std::max(max_elements, sh.outputElements(g, dim));
    }
    outputs_sym_ = runtime.heap().alloc(max_elements);
    for (int g = 0; g < system.numGpus(); ++g) {
      outputs_view_.push_back(outputs_sym_.on(g));
    }
  }

  ~BrokenUnderdeclaredPut() override { runtime_.heap().free(outputs_sym_); }

  std::string name() const override { return "broken_underdeclared_put"; }
  gpu::DeviceBuffer& output(int gpu) override {
    return outputs_view_[static_cast<std::size_t>(gpu)];
  }

  core::BatchTiming runBatch(const emb::SparseBatch& batch) override {
    auto& system = layer_.system();
    const int p = system.numGpus();
    const SimTime t0 = system.hostNow();
    for (int g = 0; g < p; ++g) {
      auto fused =
          emb::buildFusedLookupKernel(layer_, batch, g, nullptr, slices_);
      std::vector<simsan::MemEffect> remote_writes;
      fused.desc.mem_effects.push_back(
          {g, footprint(g, g), AccessKind::kWrite, ""});
      for (int d = 0; d < p; ++d) {
        if (d == g) continue;
        // BUG: the highest-numbered peer's put footprint is omitted.
        if (d == p - 1) continue;
        remote_writes.push_back({d, footprint(g, d),
                                 AccessKind::kRemoteWrite,
                                 fused.desc.name + ".put"});
      }
      runtime_.attachMessagePlan(fused.desc, g, std::move(fused.plan),
                                 nullptr, nullptr, std::move(remote_writes));
      system.launchKernel(g, std::move(fused.desc));
    }
    core::BatchTiming timing;
    timing.total = system.syncAll() - t0;
    return timing;
  }

 private:
  simsan::StridedRange footprint(int src, int dst) const {
    auto range = emb::fusedWriteFootprint(layer_.sharding(), src, dst,
                                          layer_.dim());
    range.begin += outputs_view_[static_cast<std::size_t>(dst)].offset();
    return range;
  }

  emb::ShardedEmbeddingLayer& layer_;
  pgas::PgasRuntime& runtime_;
  int slices_;
  pgas::SymmetricBuffer outputs_sym_;
  std::vector<gpu::DeviceBuffer> outputs_view_;
};

const core::RetrieverRegistrar kBrokenPutRegistrar{
    "broken_underdeclared_put",
    [](const core::SystemContext& ctx)
        -> std::unique_ptr<core::EmbeddingRetriever> {
      return std::make_unique<BrokenUnderdeclaredPut>(ctx.layer, ctx.runtime,
                                                      ctx.pgas_slices);
    }};

TEST(StrictSeededBugTest, UnderdeclaredPutFailsNamingKernelAndDestination) {
  auto cfg = tinyStrictConfig(4);
  engine::ScenarioRunner runner(cfg);
  const auto result = runner.run("broken_underdeclared_put");
  ASSERT_TRUE(result.sanitizer.has_value());
  const auto& s = *result.sanitizer;
  EXPECT_FALSE(s.clean());
  EXPECT_GT(s.undeclared_effects, 0) << s.report();
  const std::string msgs = allMessages(s);
  // The omitted destination is gpu3 (p - 1 at 4 GPUs).
  EXPECT_NE(msgs.find("gpu3"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("no declared put effect"), std::string::npos) << msgs;
}

TEST(StrictSeededBugTest, SameBugPassesWithoutStrictMode) {
  // Plain simsan cannot see the under-declaration (that is the
  // soundness gap strict mode closes): with races absent the run looks
  // clean. Guards that the seeded bug is strict-specific.
  auto cfg = tinyStrictConfig(4);
  cfg.simsan_strict = false;
  cfg.simsan = true;
  engine::ScenarioRunner runner(cfg);
  const auto result = runner.run("broken_underdeclared_put");
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_EQ(result.sanitizer->undeclared_effects, 0)
      << result.sanitizer->report();
}

}  // namespace
}  // namespace pgasemb

// Serving-pipeline suite: the open-loop refactor must not move a single
// closed-loop bit, and the new path must be deterministic.
//
//  - Golden parity: ScenarioRunner (now a thin loop over BatchExecutor)
//    vs a verbatim copy of the pre-refactor run loop, full
//    ExperimentResult equality for every retriever x {plain, cache,
//    faults+fallback}.
//  - Serving determinism: same seed -> identical histograms, timelines,
//    and byte-identical sweep CSV.
//  - Load generator statistics: Poisson inter-arrival mean/CV, bursty
//    arrivals confined to on-windows, query-size distributions.
//  - Dynamic batcher close rules: fill, deadline, overflow.
//  - Latency attribution on mid-run fallback: the drained finish() is
//    recorded (DrainEntry) and the run total stays consistent.
//  - simsan certification of the serving path at 2/4/8 GPUs.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/latency_histogram.hpp"
#include "core/registry.hpp"
#include "emb/lookup_kernel.hpp"
#include "emb/sparse_batch.hpp"
#include "engine/dynamic_batcher.hpp"
#include "engine/load_generator.hpp"
#include "engine/scenario_runner.hpp"
#include "engine/serving_runner.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "trace/report.hpp"

namespace pgasemb::engine {
namespace {

const std::vector<std::string> kRetrievers = {
    "nccl_collective", "pgas_fused", "nccl_pipelined"};

// --- Golden parity: BatchExecutor vs the pre-refactor run loop ------------

/// Verbatim copy of ScenarioRunner::run as it stood before the
/// BatchExecutor extraction (PR 6). The refactor's contract is that the
/// new closed-loop path reproduces this bit for bit.
ExperimentResult legacyRun(const ExperimentConfig& config,
                           const std::string& retriever_name) {
  SystemBuilder builder(config);
  builder.reset();
  std::unique_ptr<core::EmbeddingRetriever> retriever =
      core::RetrieverRegistry::instance().create(retriever_name,
                                                 builder.context());

  ExperimentResult result;
  Rng rng(config.batch_seed);
  const bool functional = config.mode == gpu::ExecutionMode::kFunctional;
  emb::SparseBatch statistical =
      emb::SparseBatch::statistical(config.layer.batchSpec());
  core::SloTracker slo(config.fallback);
  std::string active = retriever_name;
  std::int64_t fallback_switches = 0;
  for (int b = 0; b < config.num_batches; ++b) {
    core::BatchTiming t;
    if (functional) {
      const auto batch =
          emb::SparseBatch::generateUniform(config.layer.batchSpec(), rng);
      t = retriever->runBatch(batch);
    } else {
      t = retriever->runBatch(statistical);
    }
    result.stats.add(t);
    result.per_batch.push_back(t);
    if (slo.record(t.total) && config.fallback.fallback_to != active &&
        core::RetrieverRegistry::instance().contains(
            config.fallback.fallback_to)) {
      result.stats.total += retriever->finish();
      retriever.reset();
      active = config.fallback.fallback_to;
      retriever = core::RetrieverRegistry::instance().create(
          active, builder.context());
      ++fallback_switches;
    }
  }
  result.stats.total += retriever->finish();

  {
    fault::ResilienceStats resilience;
    auto* injector = builder.faultInjector();
    if (injector != nullptr) resilience = injector->stats();
    resilience.fallback_switches = fallback_switches;
    if (fallback_switches > 0) resilience.fallback_retriever = active;
    if (injector != nullptr || resilience.any()) {
      result.resilience = resilience;
    }
  }

  const auto& counter = builder.fabric().deliveryCounter();
  result.bucket_width = counter.bucketWidth();
  result.wire_bytes_over_time.resize(counter.numBuckets());
  for (std::size_t i = 0; i < counter.numBuckets(); ++i) {
    result.wire_bytes_over_time[i] = counter.bucket(i);
  }
  result.total_wire_bytes = builder.fabric().totalPayloadBytes();
  result.total_wire_messages = builder.fabric().totalMessages();

  {
    auto& layer = builder.layer();
    const auto work = layer.lookupWork(statistical, 0);
    const double dim = static_cast<double>(config.layer.dim);
    const double outputs = static_cast<double>(work.totalOutputs());
    const double bytes = outputs * 8.0 + work.gathered_rows * 8.0 +
                         work.gathered_rows * dim * 4.0 +
                         outputs * dim * 4.0;
    const double instructions =
        work.gathered_rows * dim *
        config.cost_model.compute_instructions_per_element;
    const SimTime duration = emb::lookupComputeTime(layer, work);
    const auto tp =
        config.cost_model.kernelThroughput(instructions, bytes, duration);
    result.lookup_compute_throughput = tp.compute;
    result.lookup_memory_throughput = tp.memory;
  }
  return result;
}

void expectTimingEq(const core::BatchTiming& a, const core::BatchTiming& b,
                    const std::string& what) {
  EXPECT_EQ(a.total, b.total) << what;
  EXPECT_EQ(a.compute_phase, b.compute_phase) << what;
  EXPECT_EQ(a.comm_phase, b.comm_phase) << what;
  EXPECT_EQ(a.unpack_phase, b.unpack_phase) << what;
  EXPECT_EQ(a.wire_time, b.wire_time) << what;
  EXPECT_EQ(a.cache_lookups, b.cache_lookups) << what;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << what;
  EXPECT_EQ(a.cache_saved_bytes, b.cache_saved_bytes) << what;
}

/// Every PR-6-visible field of the refactored runner's result must
/// equal the legacy loop's.
void expectGoldenParity(const ExperimentConfig& cfg) {
  for (const auto& name : kRetrievers) {
    const ExperimentResult legacy = legacyRun(cfg, name);
    ScenarioRunner runner(cfg);
    const ExperimentResult fresh = runner.run(name);

    const std::string what = "retriever " + name;
    EXPECT_EQ(fresh.stats.batches, legacy.stats.batches) << what;
    EXPECT_EQ(fresh.stats.total, legacy.stats.total) << what;
    EXPECT_EQ(fresh.stats.compute_phase, legacy.stats.compute_phase) << what;
    EXPECT_EQ(fresh.stats.comm_phase, legacy.stats.comm_phase) << what;
    EXPECT_EQ(fresh.stats.unpack_phase, legacy.stats.unpack_phase) << what;
    EXPECT_EQ(fresh.stats.wire_time, legacy.stats.wire_time) << what;
    EXPECT_EQ(fresh.stats.cache_lookups, legacy.stats.cache_lookups) << what;
    EXPECT_EQ(fresh.stats.cache_hits, legacy.stats.cache_hits) << what;
    EXPECT_EQ(fresh.stats.cache_saved_bytes, legacy.stats.cache_saved_bytes)
        << what;

    ASSERT_EQ(fresh.per_batch.size(), legacy.per_batch.size()) << what;
    for (std::size_t i = 0; i < fresh.per_batch.size(); ++i) {
      expectTimingEq(fresh.per_batch[i], legacy.per_batch[i],
                     what + " batch " + std::to_string(i));
    }

    EXPECT_EQ(fresh.total_wire_bytes, legacy.total_wire_bytes) << what;
    EXPECT_EQ(fresh.total_wire_messages, legacy.total_wire_messages) << what;
    EXPECT_EQ(fresh.bucket_width, legacy.bucket_width) << what;
    ASSERT_EQ(fresh.wire_bytes_over_time.size(),
              legacy.wire_bytes_over_time.size())
        << what;
    for (std::size_t i = 0; i < fresh.wire_bytes_over_time.size(); ++i) {
      EXPECT_EQ(fresh.wire_bytes_over_time[i], legacy.wire_bytes_over_time[i])
          << what << " bucket " << i;
    }
    EXPECT_EQ(fresh.lookup_compute_throughput,
              legacy.lookup_compute_throughput)
        << what;
    EXPECT_EQ(fresh.lookup_memory_throughput, legacy.lookup_memory_throughput)
        << what;

    ASSERT_EQ(fresh.resilience.has_value(), legacy.resilience.has_value())
        << what;
    if (fresh.resilience) {
      EXPECT_EQ(fresh.resilience->dropped_flows,
                legacy.resilience->dropped_flows)
          << what;
      EXPECT_EQ(fresh.resilience->retransmits, legacy.resilience->retransmits)
          << what;
      EXPECT_EQ(fresh.resilience->collective_reissues,
                legacy.resilience->collective_reissues)
          << what;
      EXPECT_EQ(fresh.resilience->launch_retries,
                legacy.resilience->launch_retries)
          << what;
      EXPECT_EQ(fresh.resilience->fallback_switches,
                legacy.resilience->fallback_switches)
          << what;
      EXPECT_EQ(fresh.resilience->fallback_retriever,
                legacy.resilience->fallback_retriever)
          << what;
    }
    EXPECT_FALSE(fresh.serving.has_value()) << what;
  }
}

TEST(GoldenParity, PlainClosedLoop) {
  ExperimentConfig cfg = weakScalingConfig(2);
  cfg.num_batches = 4;
  expectGoldenParity(cfg);
}

TEST(GoldenParity, WithReplicaCache) {
  ExperimentConfig cfg = cacheServingConfig(2);
  cfg.num_batches = 4;
  cfg.cache_rows = 1024;
  cfg.layer.zipf_alpha = 1.05;
  expectGoldenParity(cfg);
}

TEST(GoldenParity, WithFaultsAndFallback) {
  ExperimentConfig cfg = weakScalingConfig(2);
  cfg.num_batches = 6;
  cfg.faults = fault::FaultPlan::parse("link-degrade:0-1:0.25:0.0-5.0", 7,
                                       SimTime::ms(10.0));
  cfg.fallback.slo_factor = 1.05;
  cfg.fallback.patience = 2;
  expectGoldenParity(cfg);
}

// --- Serving pipeline ------------------------------------------------------

ExperimentConfig smallServingConfig(int gpus = 2,
                                    std::int64_t max_batch = 64) {
  ExperimentConfig cfg;
  cfg.num_gpus = gpus;
  cfg.layer = emb::servingLayerSpec(gpus, max_batch);
  cfg.serving.num_queries = 300;
  cfg.serving.qps = 50000.0;
  cfg.serving.query_size = emb::parseQuerySizeSpec("uniform:1-16");
  cfg.serving.max_wait_ms = 0.2;
  cfg.serving.timeline_window = 50;
  return cfg;
}

TEST(Serving, RunsAndPopulatesResult) {
  const ExperimentConfig cfg = smallServingConfig();
  ServingRunner runner(cfg);
  const ExperimentResult result = runner.run("pgas_fused");
  ASSERT_TRUE(result.serving.has_value());
  const ServingResult& sv = *result.serving;
  EXPECT_EQ(sv.queries, cfg.serving.num_queries);
  EXPECT_EQ(sv.latency.count(), cfg.serving.num_queries);
  EXPECT_EQ(sv.queue_latency.count(), cfg.serving.num_queries);
  EXPECT_GT(sv.batches, 0);
  EXPECT_EQ(static_cast<std::int64_t>(sv.per_batch_samples.size()),
            sv.batches);
  EXPECT_EQ(sv.batches, result.stats.batches);
  // Percentiles are ordered and positive; queueing is part of the total.
  EXPECT_GT(sv.p50_ms, 0.0);
  EXPECT_LE(sv.p50_ms, sv.p95_ms);
  EXPECT_LE(sv.p95_ms, sv.p99_ms);
  EXPECT_LE(sv.p99_ms, sv.max_ms);
  EXPECT_GE(sv.mean_ms, sv.mean_queue_ms);
  EXPECT_GT(sv.achieved_qps, 0.0);
  EXPECT_GT(sv.mean_batch_fill, 0.0);
  EXPECT_LE(sv.mean_batch_fill, 1.0);
  // Every sample the generator produced went through some batch.
  std::int64_t samples = 0;
  for (const auto s : sv.per_batch_samples) {
    EXPECT_GE(s, 1);
    EXPECT_LE(s, 64);
    samples += s;
  }
  EXPECT_GE(samples, cfg.serving.num_queries);  // sizes >= 1 each
}

TEST(Serving, SameSeedIsDeterministic) {
  const ExperimentConfig cfg = smallServingConfig();
  auto run_once = [&](const std::string& name) {
    ServingRunner runner(cfg);
    return runner.run(name);
  };
  for (const auto& name : kRetrievers) {
    const ExperimentResult a = run_once(name);
    const ExperimentResult b = run_once(name);
    ASSERT_TRUE(a.serving && b.serving) << name;
    EXPECT_TRUE(a.serving->latency == b.serving->latency) << name;
    EXPECT_TRUE(a.serving->queue_latency == b.serving->queue_latency)
        << name;
    EXPECT_EQ(a.serving->per_batch_samples, b.serving->per_batch_samples)
        << name;
    EXPECT_EQ(a.serving->window_p95_ms, b.serving->window_p95_ms) << name;
    EXPECT_EQ(a.serving->p99_ms, b.serving->p99_ms) << name;
    EXPECT_EQ(a.serving->achieved_qps, b.serving->achieved_qps) << name;
    EXPECT_EQ(a.stats.total, b.stats.total) << name;
  }
}

TEST(Serving, SweepCsvIsByteIdentical) {
  const ExperimentConfig cfg = smallServingConfig();
  auto sweep = [&] {
    ServingRunner runner(cfg);
    trace::ServingPoint point;
    point.arrival = formatArrivalPattern(cfg.serving.arrival);
    point.qps = cfg.serving.qps;
    point.runs = runner.runAll({"nccl_collective", "pgas_fused"});
    return std::vector<trace::ServingPoint>{point};
  };
  const auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  const std::string path_a = testing::TempDir() + "serving_a.csv";
  const std::string path_b = testing::TempDir() + "serving_b.csv";
  trace::writeServingCsv(path_a, sweep());
  trace::writeServingCsv(path_b, sweep());
  const std::string a = read_file(path_a);
  const std::string b = read_file(path_b);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Serving, ClosedLoopOutputUnchangedWhenServingOff) {
  // The serving config rides inside ExperimentConfig; as long as it is
  // disabled the closed-loop result must not depend on its values.
  ExperimentConfig cfg = weakScalingConfig(2);
  cfg.num_batches = 3;
  const ExperimentResult base = ScenarioRunner(cfg).run("pgas_fused");
  cfg.serving.qps = 123456.0;
  cfg.serving.max_wait_ms = 99.0;
  cfg.serving.slo_ms = 0.001;
  const ExperimentResult tweaked = ScenarioRunner(cfg).run("pgas_fused");
  EXPECT_EQ(base.stats.total, tweaked.stats.total);
  EXPECT_EQ(base.total_wire_bytes, tweaked.total_wire_bytes);
  EXPECT_FALSE(tweaked.serving.has_value());
}

// --- Load generator --------------------------------------------------------

TEST(LoadGenerator, PoissonInterArrivalStatistics) {
  ServingConfig cfg;
  cfg.num_queries = 20000;
  cfg.qps = 100000.0;
  LoadGenerator gen(cfg, 64);
  std::vector<double> gaps;
  SimTime prev = SimTime::zero();
  bool first = true;
  while (auto q = gen.next()) {
    if (!first) gaps.push_back((q->arrival - prev).toSec());
    prev = q->arrival;
    first = false;
  }
  ASSERT_EQ(gaps.size(), static_cast<std::size_t>(cfg.num_queries - 1));
  double sum = 0.0;
  for (const double g : gaps) {
    EXPECT_GE(g, 0.0);
    sum += g;
  }
  const double mean = sum / static_cast<double>(gaps.size());
  double var = 0.0;
  for (const double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  // Exponential(rate): mean = 1/rate, CV = 1.
  EXPECT_NEAR(mean, 1.0 / cfg.qps, 0.05 / cfg.qps);
  EXPECT_NEAR(std::sqrt(var) / mean, 1.0, 0.05);
}

TEST(LoadGenerator, BurstyArrivalsStayInOnWindows) {
  ServingConfig cfg;
  cfg.num_queries = 5000;
  cfg.qps = 20000.0;
  cfg.arrival = ArrivalPattern::kBursty;
  cfg.burst_on_ms = 1.0;
  cfg.burst_off_ms = 4.0;
  LoadGenerator gen(cfg, 64);
  const double period_ms = cfg.burst_on_ms + cfg.burst_off_ms;
  SimTime prev = SimTime::zero();
  SimTime last = SimTime::zero();
  while (auto q = gen.next()) {
    EXPECT_GE(q->arrival, prev);
    const double pos = std::fmod(q->arrival.toMs(), period_ms);
    EXPECT_LT(pos, cfg.burst_on_ms + 1e-9);
    prev = q->arrival;
    last = q->arrival;
  }
  // Long-run average stays ~qps despite the silence windows.
  const double span_s = last.toSec();
  ASSERT_GT(span_s, 0.0);
  EXPECT_NEAR(static_cast<double>(cfg.num_queries) / span_s, cfg.qps,
              0.1 * cfg.qps);
}

TEST(LoadGenerator, QuerySizesFollowTheSpecAndCap) {
  ServingConfig cfg;
  cfg.num_queries = 8000;
  cfg.qps = 1e6;
  cfg.query_size = emb::parseQuerySizeSpec("uniform:1-32");
  LoadGenerator gen(cfg, 16);  // cap below the spec's hi
  std::int64_t lo = 1 << 20, hi = 0;
  double sum = 0.0, n = 0.0;
  while (auto q = gen.next()) {
    lo = std::min(lo, q->samples);
    hi = std::max(hi, q->samples);
    sum += static_cast<double>(q->samples);
    n += 1.0;
  }
  EXPECT_EQ(lo, 1);
  EXPECT_EQ(hi, 16);  // the batcher cap clamps the tail
  // U(1,32) clamped to 16: mean = (1+...+15)/32 + 16*17/32 = 12.25
  EXPECT_NEAR(sum / n, 12.25, 0.3);
}

TEST(QuerySize, ParseFormatAndMoments) {
  const auto fixed = emb::parseQuerySizeSpec("fixed:8");
  EXPECT_EQ(fixed.kind, emb::QuerySizeSpec::Kind::kFixed);
  EXPECT_EQ(fixed.lo, 8);
  EXPECT_EQ(emb::formatQuerySizeSpec(fixed), "fixed:8");
  EXPECT_EQ(fixed.meanSize(), 8.0);

  const auto uni = emb::parseQuerySizeSpec("uniform:2-10");
  EXPECT_EQ(uni.kind, emb::QuerySizeSpec::Kind::kUniform);
  EXPECT_EQ(uni.lo, 2);
  EXPECT_EQ(uni.hi, 10);
  EXPECT_EQ(uni.meanSize(), 6.0);
  EXPECT_EQ(emb::formatQuerySizeSpec(uni), "uniform:2-10");

  const auto zipf = emb::parseQuerySizeSpec("zipf:1.2:1-64");
  EXPECT_EQ(zipf.kind, emb::QuerySizeSpec::Kind::kZipf);
  EXPECT_EQ(zipf.alpha, 1.2);
  // Skewed towards lo: the mean sits well under the uniform midpoint.
  EXPECT_GT(zipf.meanSize(), 1.0);
  EXPECT_LT(zipf.meanSize(), 32.5);

  // The zipf sampler's empirical mean matches the analytic meanSize.
  emb::QuerySizeSampler sampler(zipf);
  Rng rng(123);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(sampler.sample(rng));
  }
  EXPECT_NEAR(sum / n, zipf.meanSize(), 0.05 * zipf.meanSize());

  EXPECT_THROW(emb::parseQuerySizeSpec("fixed:0"), Error);
  EXPECT_THROW(emb::parseQuerySizeSpec("uniform:8-2"), Error);
  EXPECT_THROW(emb::parseQuerySizeSpec("zipf:1.2"), Error);
  EXPECT_THROW(emb::parseQuerySizeSpec("gauss:3"), Error);
}

// --- Dynamic batcher -------------------------------------------------------

ServingConfig batcherConfig(double qps, std::int64_t queries,
                            const std::string& sizes) {
  ServingConfig cfg;
  cfg.num_queries = queries;
  cfg.qps = qps;
  cfg.query_size = emb::parseQuerySizeSpec(sizes);
  return cfg;
}

TEST(DynamicBatcher, ClosesOnFill) {
  // Arrivals far faster than the wait budget: batches close full.
  const ServingConfig cfg = batcherConfig(1e8, 64, "fixed:1");
  LoadGenerator gen(cfg, 16);
  DynamicBatcher batcher(gen, 16, SimTime::ms(10.0));
  int batches = 0;
  SimTime free_at = SimTime::zero();
  while (auto b = batcher.nextBatch(free_at)) {
    EXPECT_EQ(b->samples, 16);
    EXPECT_EQ(b->queries.size(), 16u);
    // The batch closes when the filling query arrives, not at the
    // deadline.
    EXPECT_EQ(b->close_time, b->queries.back().arrival);
    free_at = b->close_time;
    ++batches;
  }
  EXPECT_EQ(batches, 4);
}

TEST(DynamicBatcher, ClosesOnDeadline) {
  // Arrivals far slower than the wait budget: singleton batches closing
  // exactly max_wait after their first (only) query.
  const ServingConfig cfg = batcherConfig(100.0, 8, "fixed:1");
  LoadGenerator gen(cfg, 16);
  const SimTime wait = SimTime::ms(0.5);
  DynamicBatcher batcher(gen, 16, wait);
  int batches = 0;
  while (auto b = batcher.nextBatch(SimTime::zero())) {
    EXPECT_EQ(b->queries.size(), 1u);
    EXPECT_EQ(b->close_time, b->queries.front().arrival + wait);
    EXPECT_EQ(b->queue_depth_at_close, 0);
    ++batches;
  }
  EXPECT_EQ(batches, 8);
}

TEST(DynamicBatcher, ClosesOnOverflow) {
  // 3-sample queries into a 4-sample batch: every batch carries one
  // query and closes when the next (overflowing) query arrives.
  const ServingConfig cfg = batcherConfig(1e8, 12, "fixed:3");
  LoadGenerator gen(cfg, 4);
  DynamicBatcher batcher(gen, 4, SimTime::ms(10.0));
  int batches = 0;
  while (auto b = batcher.nextBatch(SimTime::zero())) {
    EXPECT_EQ(b->queries.size(), 1u);
    EXPECT_EQ(b->samples, 3);
    ++batches;
  }
  EXPECT_EQ(batches, 12);
}

TEST(DynamicBatcher, NeverSplitsAQueryAndPreservesFifo) {
  const ServingConfig cfg = batcherConfig(5e7, 200, "uniform:1-16");
  LoadGenerator gen(cfg, 32);
  DynamicBatcher batcher(gen, 32, SimTime::ms(0.05));
  std::int64_t next_id = 0;
  SimTime free_at = SimTime::zero();
  while (auto b = batcher.nextBatch(free_at)) {
    std::int64_t samples = 0;
    for (const auto& q : b->queries) {
      EXPECT_EQ(q.id, next_id++);  // FIFO, no splits, no drops
      samples += q.samples;
    }
    EXPECT_EQ(samples, b->samples);
    EXPECT_LE(samples, 32);
    free_at = std::max(free_at, b->close_time);
  }
  EXPECT_EQ(next_id, 200);
}

// --- Latency attribution on mid-run fallback -------------------------------

TEST(DrainAttribution, ClosedLoopRecordsDrainEntry) {
  // An impossible SLO fires the fallback right after the first batch;
  // the pipelined strategy has in-flight work, so its drained finish()
  // must be visible both in the run total and as a DrainEntry.
  ExperimentConfig cfg = weakScalingConfig(2);
  cfg.num_batches = 6;
  cfg.fallback.slo_ms = 0.0001;
  cfg.fallback.patience = 1;
  const ExperimentResult result =
      ScenarioRunner(cfg).run("nccl_pipelined");
  ASSERT_TRUE(result.resilience.has_value());
  EXPECT_EQ(result.resilience->fallback_switches, 1);
  EXPECT_EQ(result.resilience->fallback_retriever, "nccl_collective");
  ASSERT_EQ(result.drains.size(), 1u);
  EXPECT_EQ(result.drains[0].retriever, "nccl_pipelined");
  EXPECT_EQ(result.drains[0].after_batch, 1);
  EXPECT_GT(result.drains[0].drain_time, SimTime::zero());
  // total = sum of batch timings + the recorded drain (the collective
  // fallback's final finish() is a no-op).
  SimTime batch_sum = SimTime::zero();
  for (const auto& t : result.per_batch) batch_sum += t.total;
  EXPECT_EQ(result.stats.total, batch_sum + result.drains[0].drain_time);
}

TEST(DrainAttribution, ServingChargesDrainToInFlightQueries) {
  ExperimentConfig cfg = smallServingConfig();
  cfg.serving.num_queries = 400;
  cfg.fallback.slo_ms = 0.0001;  // impossible: fires once the window fills
  cfg.fallback.patience = 1;
  cfg.fallback.query_window = 32;
  const ExperimentResult result =
      ServingRunner(cfg).run("nccl_pipelined");
  ASSERT_TRUE(result.resilience.has_value());
  EXPECT_EQ(result.resilience->fallback_switches, 1);
  ASSERT_EQ(result.drains.size(), 1u);
  EXPECT_EQ(result.drains[0].retriever, "nccl_pipelined");
  EXPECT_GT(result.drains[0].drain_time, SimTime::zero());
  ASSERT_TRUE(result.serving.has_value());
  // The drain advanced the host clock between batches, so the queries
  // that waited through the switch carry it: the max latency is at
  // least the drain itself.
  EXPECT_GE(SimTime::ms(result.serving->max_ms),
            result.drains[0].drain_time);
}

// --- SloTracker query mode -------------------------------------------------

TEST(SloTrackerQuery, AbsoluteSloFiresOnSlidingWindowP95) {
  core::FallbackPolicy policy;
  policy.slo_ms = 1.0;
  policy.patience = 2;
  policy.query_window = 4;
  core::SloTracker tracker(policy);
  // Window not yet full: never fires.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(tracker.recordQuery(SimTime::ms(10.0)));
  }
  EXPECT_EQ(tracker.windowP95(), SimTime::zero());
  // Fourth query fills the window; p95 = 10ms > 1ms -> patience 1 of 2.
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(10.0)));
  EXPECT_EQ(tracker.windowP95(), SimTime::ms(10.0));
  // Second consecutive over-SLO evaluation fires.
  EXPECT_TRUE(tracker.recordQuery(SimTime::ms(10.0)));
  // Fired once: disarmed for the rest of the run.
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(100.0)));
}

TEST(SloTrackerQuery, FactorCalibratesFromFirstFullWindow) {
  core::FallbackPolicy policy;
  policy.slo_factor = 2.0;
  policy.patience = 1;
  policy.query_window = 4;
  core::SloTracker tracker(policy);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(tracker.recordQuery(SimTime::ms(1.0)));
  }
  EXPECT_EQ(tracker.slo(), SimTime::ms(2.0));  // p95(1ms) x 2
  // Healthy tail stays under the calibrated SLO.
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(1.5)));
  // A blown tail fires immediately at patience 1.
  EXPECT_TRUE(tracker.recordQuery(SimTime::ms(10.0)));
}

TEST(SloTrackerQuery, ConsecutiveCounterResetsOnHealthyWindow) {
  core::FallbackPolicy policy;
  policy.slo_ms = 1.0;
  policy.patience = 3;
  policy.query_window = 2;
  core::SloTracker tracker(policy);
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(5.0)));  // filling
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(5.0)));  // over (1 of 3)
  // One healthy query still leaves a 5ms entry in the 2-wide window
  // (p95 = max stays over); the second clears it and resets patience.
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(0.1)));  // over (2 of 3)
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(0.1)));  // healthy: reset
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(5.0)));  // over (1 of 3)
  EXPECT_FALSE(tracker.recordQuery(SimTime::ms(5.0)));  // over (2 of 3)
  EXPECT_TRUE(tracker.recordQuery(SimTime::ms(5.0)));   // over (3 of 3)
}

// --- LatencyHistogram ------------------------------------------------------

TEST(LatencyHistogram, EmptyAndExactMoments) {
  core::LatencyHistogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.min(), SimTime::zero());
  EXPECT_EQ(h.max(), SimTime::zero());
  EXPECT_EQ(h.percentileMs(50.0), 0.0);
  for (int ms = 1; ms <= 100; ++ms) h.add(SimTime::ms(ms));
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), SimTime::ms(1.0));
  EXPECT_EQ(h.max(), SimTime::ms(100.0));
  EXPECT_DOUBLE_EQ(h.meanMs(), 50.5);  // sum is exact integral SimTime
  // Interpolated percentiles live within a log bin (~21% wide) of the
  // exact value and inside the observed range.
  EXPECT_NEAR(h.percentileMs(50.0), 50.5, 0.25 * 50.5);
  EXPECT_GE(h.percentileMs(0.0), 1.0);
  EXPECT_LE(h.percentileMs(100.0), 100.0);
  EXPECT_LT(h.percentileMs(10.0), h.percentileMs(90.0));
}

TEST(LatencyHistogram, UnderflowOverflowAndMerge) {
  core::LatencyHistogram h;
  h.add(SimTime::zero());          // underflow bin
  h.add(SimTime::sec(1000.0));     // overflow bin
  EXPECT_EQ(h.count(), 2);
  EXPECT_EQ(h.binCount(0), 1);
  EXPECT_EQ(h.binCount(h.numBins() - 1), 1);
  // Percentiles stay clamped to observed extremes even in open bins.
  EXPECT_LE(h.percentileMs(99.0), 1000.0 * 1000.0);
  EXPECT_THROW(h.add(SimTime::ms(-1.0)), Error);

  core::LatencyHistogram a, b, all;
  for (int i = 1; i <= 50; ++i) {
    a.add(SimTime::ms(i));
    all.add(SimTime::ms(i));
  }
  for (int i = 51; i <= 100; ++i) {
    b.add(SimTime::ms(i));
    all.add(SimTime::ms(i));
  }
  a.merge(b);
  EXPECT_TRUE(a == all);
}

// --- Config validation -----------------------------------------------------

TEST(Validation, RejectsBadConfigsAtParseTime) {
  {
    ExperimentConfig cfg = weakScalingConfig(2);
    cfg.num_batches = 0;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    ExperimentConfig cfg = smallServingConfig();
    cfg.serving.qps = 0.0;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    ExperimentConfig cfg = smallServingConfig();
    cfg.serving.max_batch_size = cfg.layer.batch_size + 1;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    ExperimentConfig cfg = smallServingConfig();
    cfg.serving.arrival = ArrivalPattern::kBursty;
    cfg.serving.burst_on_ms = 0.0;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    ExperimentConfig cfg = smallServingConfig();
    cfg.serving.max_wait_ms = -1.0;
    EXPECT_THROW(cfg.validate(), Error);
  }
  EXPECT_NO_THROW(smallServingConfig().validate());
  EXPECT_THROW(parseArrivalPattern("sinusoidal"), Error);
  EXPECT_EQ(formatArrivalPattern(ArrivalPattern::kBursty), "bursty");
}

// --- Partial batches (active_samples) --------------------------------------

TEST(ActiveSamples, PaddingIsEmptyBagsAndPrefixPreserving) {
  emb::SparseBatchSpec spec;
  spec.num_tables = 2;
  spec.batch_size = 8;
  spec.min_pooling = 1;
  spec.max_pooling = 4;

  Rng rng_full(42);
  const auto full = emb::SparseBatch::generateUniform(spec, rng_full);
  spec.active_samples = 3;
  Rng rng_part(42);
  const auto part = emb::SparseBatch::generateUniform(spec, rng_part);

  for (std::int64_t t = 0; t < 2; ++t) {
    for (std::int64_t s = 0; s < 8; ++s) {
      if (s < 3) {
        EXPECT_GE(part.poolingFactor(t, s), 1);
      } else {
        EXPECT_EQ(part.poolingFactor(t, s), 0);  // NULL padding
      }
    }
  }
  // Same seed, same draw order: the FIRST table's active prefix is
  // identical to the fully active batch's (later tables' streams shift
  // because padding consumes no draws).
  for (std::int64_t s = 0; s < 3; ++s) {
    EXPECT_EQ(part.poolingFactor(0, s), full.poolingFactor(0, s));
  }

  // The statistical twin scales expectations by the active fill.
  const auto stat = emb::SparseBatch::statistical(spec);
  EXPECT_DOUBLE_EQ(stat.totalIndices(0, 2), 3 * 2.5 * 2);
}

// --- Overload-resilient admission control (DESIGN.md §13) -------------------

/// Offered load far past the 2-GPU knee: without admission control the
/// queue grows without bound and the tail blows through any SLO.
ExperimentConfig overloadConfig() {
  ExperimentConfig cfg = smallServingConfig();
  cfg.serving.num_queries = 400;
  cfg.serving.qps = 400000.0;
  return cfg;
}

// Sustained ~2x-knee overload: the arrival phase has to outlast the
// first SLO-breaching completion or the sliding-window controller never
// gets a chance to shed anything (a short burst is fully admitted
// before its backlog shows up in the completion window).
ExperimentConfig sustainedOverloadConfig() {
  ExperimentConfig cfg = smallServingConfig();
  cfg.serving.num_queries = 3000;
  cfg.serving.qps = 300000.0;
  return cfg;
}

TEST(Admission, DisabledByDefaultAndAbsentFromResult) {
  const ExperimentConfig cfg = smallServingConfig();
  EXPECT_FALSE(cfg.serving.admissionEnabled());
  const ExperimentResult r = ServingRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(r.serving.has_value());
  EXPECT_FALSE(r.serving->admission);
  EXPECT_EQ(r.serving->totalShed(), 0);
  EXPECT_EQ(r.serving->deadline_misses, 0);
  EXPECT_EQ(r.serving->blocked_arrivals, 0);
  // The goodput rate is computed regardless (slo_ms == 0 counts every
  // served query as good).
  EXPECT_DOUBLE_EQ(r.serving->goodput_qps, r.serving->achieved_qps);
}

TEST(Admission, BlockPolicyCountsButServesEveryQuery) {
  ExperimentConfig cfg = overloadConfig();
  cfg.serving.admit_queue = 4;
  cfg.serving.shed_policy = ShedPolicy::kBlock;
  const ExperimentResult r = ServingRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(r.serving.has_value());
  const ServingResult& sv = *r.serving;
  EXPECT_TRUE(sv.admission);
  EXPECT_GT(sv.blocked_arrivals, 0);
  EXPECT_EQ(sv.totalShed(), 0);
  // Blocking sheds nothing: every query is eventually served.
  EXPECT_EQ(sv.queries, cfg.serving.num_queries);
}

TEST(Admission, ShedPoliciesDropAndConserveQueries) {
  for (const ShedPolicy policy :
       {ShedPolicy::kShedOldest, ShedPolicy::kShedNewest}) {
    ExperimentConfig cfg = overloadConfig();
    cfg.serving.admit_queue = 4;
    cfg.serving.shed_policy = policy;
    const ExperimentResult r = ServingRunner(cfg).run("pgas_fused");
    ASSERT_TRUE(r.serving.has_value());
    const ServingResult& sv = *r.serving;
    EXPECT_GT(sv.shed_queue, 0) << formatShedPolicy(policy);
    EXPECT_EQ(sv.blocked_arrivals, 0) << formatShedPolicy(policy);
    // Every generated query is either served or shed, never lost.
    EXPECT_EQ(sv.queries + sv.totalShed() + sv.deadline_misses,
              cfg.serving.num_queries)
        << formatShedPolicy(policy);
    EXPECT_LT(sv.queries, cfg.serving.num_queries)
        << formatShedPolicy(policy);
  }
}

TEST(Admission, ShedOldestKeepsTheQueueFresherThanShedNewest) {
  auto run = [](ShedPolicy policy) {
    ExperimentConfig cfg = overloadConfig();
    cfg.serving.admit_queue = 8;
    cfg.serving.shed_policy = policy;
    return ServingRunner(cfg).run("pgas_fused");
  };
  const ExperimentResult oldest = run(ShedPolicy::kShedOldest);
  const ExperimentResult newest = run(ShedPolicy::kShedNewest);
  ASSERT_TRUE(oldest.serving && newest.serving);
  // Shedding the head serves fresher queries: its mean queue wait can
  // never exceed the drop-at-the-door policy's.
  EXPECT_LE(oldest.serving->mean_queue_ms, newest.serving->mean_queue_ms);
}

TEST(Admission, QueueDeadlineShedsStaleQueries) {
  ExperimentConfig cfg = overloadConfig();
  cfg.serving.query_deadline_ms = 0.5;
  const ExperimentResult r = ServingRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(r.serving.has_value());
  const ServingResult& sv = *r.serving;
  EXPECT_GT(sv.deadline_misses, 0);
  // totalShed() already folds in the deadline misses.
  EXPECT_EQ(sv.queries + sv.totalShed(), cfg.serving.num_queries);
  // Every query that did get served waited at most the deadline.
  EXPECT_LE(sv.queue_latency.max(), SimTime::ms(cfg.serving.max_wait_ms) +
                                        SimTime::ms(0.5));
}

TEST(Admission, SheddingHoldsP95UnderOverloadWhereNoSheddingViolates) {
  // 2x-knee overload against a 2 ms SLO: without admission control the
  // backlog grows without bound and the p95 blows through the SLO; the
  // full admission stack (bounded queue with shed-oldest plus the
  // sliding-window controller) keeps the served tail inside it.
  ExperimentConfig open = sustainedOverloadConfig();
  open.serving.slo_ms = 2.0;
  const ExperimentResult uncontrolled =
      ServingRunner(open).run("pgas_fused");
  ASSERT_TRUE(uncontrolled.serving.has_value());
  EXPECT_GT(uncontrolled.serving->p95_ms, open.serving.slo_ms);

  ExperimentConfig shed = sustainedOverloadConfig();
  shed.serving.slo_ms = 2.0;
  shed.serving.admit_queue = 8;
  shed.serving.shed_policy = ShedPolicy::kShedOldest;
  shed.serving.admit_window = 50;
  const ExperimentResult controlled = ServingRunner(shed).run("pgas_fused");
  ASSERT_TRUE(controlled.serving.has_value());
  const ServingResult& sv = *controlled.serving;
  EXPECT_GT(sv.totalShed(), 0);
  EXPECT_LE(sv.p95_ms, open.serving.slo_ms);
  EXPECT_GT(sv.goodput_qps, uncontrolled.serving->goodput_qps);
}

TEST(Admission, OverloadControllerShedsWhenTheWindowedP95Breaches) {
  // The controller alone (no queue bound): every breached completion
  // window ratchets the shed fraction up, so under sustained overload it
  // must start shedding arrivals and improve the served tail over the
  // uncontrolled run.
  ExperimentConfig open = sustainedOverloadConfig();
  open.serving.slo_ms = 2.0;
  const ExperimentResult uncontrolled =
      ServingRunner(open).run("pgas_fused");

  ExperimentConfig ctl = sustainedOverloadConfig();
  ctl.serving.slo_ms = 2.0;
  ctl.serving.admit_window = 25;
  const ExperimentResult controlled = ServingRunner(ctl).run("pgas_fused");
  ASSERT_TRUE(uncontrolled.serving && controlled.serving);
  EXPECT_GT(controlled.serving->shed_overload, 0);
  EXPECT_LT(controlled.serving->p95_ms, uncontrolled.serving->p95_ms);
  EXPECT_EQ(controlled.serving->queries + controlled.serving->totalShed(),
            ctl.serving.num_queries);
}

TEST(Admission, SameSeedIsDeterministic) {
  ExperimentConfig cfg = overloadConfig();
  cfg.serving.admit_queue = 8;
  cfg.serving.shed_policy = ShedPolicy::kShedOldest;
  cfg.serving.query_deadline_ms = 3.0;
  cfg.serving.slo_ms = 2.0;
  cfg.serving.admit_window = 50;
  auto run = [&] { return ServingRunner(cfg).run("pgas_fused"); };
  const ExperimentResult a = run();
  const ExperimentResult b = run();
  ASSERT_TRUE(a.serving && b.serving);
  EXPECT_EQ(a.serving->shed_queue, b.serving->shed_queue);
  EXPECT_EQ(a.serving->shed_overload, b.serving->shed_overload);
  EXPECT_EQ(a.serving->deadline_misses, b.serving->deadline_misses);
  EXPECT_EQ(a.serving->goodput_qps, b.serving->goodput_qps);
  EXPECT_EQ(a.stats.total, b.stats.total);
}

TEST(Admission, PolicyParsingRoundTripsAndRejectsJunk) {
  EXPECT_EQ(parseShedPolicy("block"), ShedPolicy::kBlock);
  EXPECT_EQ(parseShedPolicy("shed-oldest"), ShedPolicy::kShedOldest);
  EXPECT_EQ(parseShedPolicy("shed-newest"), ShedPolicy::kShedNewest);
  for (const ShedPolicy p :
       {ShedPolicy::kBlock, ShedPolicy::kShedOldest,
        ShedPolicy::kShedNewest}) {
    EXPECT_EQ(parseShedPolicy(formatShedPolicy(p)), p);
  }
  EXPECT_THROW(parseShedPolicy("drop-all"), Error);
}

TEST(Admission, ValidationRejectsInconsistentKnobs) {
  {
    ExperimentConfig cfg = smallServingConfig();
    cfg.serving.admit_queue = -1;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    ExperimentConfig cfg = smallServingConfig();
    cfg.serving.query_deadline_ms = -0.5;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    // A latency window without an SLO has nothing to control against.
    ExperimentConfig cfg = smallServingConfig();
    cfg.serving.admit_window = 10;
    EXPECT_THROW(cfg.validate(), Error);
  }
  {
    // Admission knobs on a closed-loop (non-serving) config are a
    // config error, not silently ignored.
    ExperimentConfig cfg = weakScalingConfig(2);
    cfg.num_batches = 2;
    cfg.serving.admit_queue = 8;
    EXPECT_THROW(cfg.validate(), Error);
  }
}

TEST(Admission, CsvColumnsAppearOnlyWhenArmed) {
  const auto read_file = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  };
  auto sweep = [&](bool admission) {
    ExperimentConfig cfg = smallServingConfig();
    if (admission) {
      cfg.serving.admit_queue = 8;
      cfg.serving.shed_policy = ShedPolicy::kShedOldest;
    }
    ServingRunner runner(cfg);
    trace::ServingPoint point;
    point.arrival = formatArrivalPattern(cfg.serving.arrival);
    point.qps = cfg.serving.qps;
    point.runs = runner.runAll({"pgas_fused"});
    return std::vector<trace::ServingPoint>{point};
  };
  const std::string path_off = testing::TempDir() + "admission_off.csv";
  const std::string path_on = testing::TempDir() + "admission_on.csv";
  trace::writeServingCsv(path_off, sweep(false));
  trace::writeServingCsv(path_on, sweep(true));
  const std::string off = read_file(path_off);
  const std::string on = read_file(path_on);
  // Absent-neutral: the historical schema is untouched when no run armed
  // an admission knob; the new columns appear only when one did.
  EXPECT_EQ(off.find("shed_queue"), std::string::npos);
  EXPECT_EQ(off.find("goodput_qps"), std::string::npos);
  EXPECT_NE(on.find("shed_queue"), std::string::npos);
  EXPECT_NE(on.find("goodput_qps"), std::string::npos);
}

// --- simsan certification of the serving path ------------------------------

TEST(ServingSimsan, CleanAcrossGpuCountsAndRetrievers) {
  for (const int gpus : {2, 4, 8}) {
    ExperimentConfig cfg = smallServingConfig(gpus);
    cfg.serving.num_queries = 60;
    cfg.simsan = true;
    ServingRunner runner(cfg);
    for (const auto& name : kRetrievers) {
      const ExperimentResult result = runner.run(name);
      ASSERT_TRUE(result.sanitizer.has_value())
          << name << " @ " << gpus << " GPUs";
      EXPECT_TRUE(result.sanitizer->clean())
          << name << " @ " << gpus
          << " GPUs: " << result.sanitizer->report();
    }
  }
}

}  // namespace
}  // namespace pgasemb::engine

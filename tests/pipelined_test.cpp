// Tests for the inter-batch pipelined collective baseline.
#include <gtest/gtest.h>

#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "core/pipelined_retriever.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb::core {
namespace {

struct Rig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  pgas::PgasRuntime runtime;
  emb::ShardedEmbeddingLayer layer;

  explicit Rig(int gpus, gpu::ExecutionMode mode =
                             gpu::ExecutionMode::kTimingOnly)
      : system(config(gpus, mode)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric),
        runtime(system, fabric),
        layer(system, spec()) {}

  static gpu::SystemConfig config(int gpus, gpu::ExecutionMode mode) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 8LL << 30;
    cfg.mode = mode;
    return cfg;
  }
  static emb::EmbLayerSpec spec() {
    emb::EmbLayerSpec s;
    s.total_tables = 16;
    s.rows_per_table = 100000;
    s.dim = 64;
    s.batch_size = 8192;
    s.min_pooling = 1;
    s.max_pooling = 64;
    s.seed = 0x919e;
    return s;
  }
};

double amortizedMs(Rig& rig, EmbeddingRetriever& retriever, int batches,
                   PipelinedCollectiveRetriever* pipelined = nullptr) {
  const auto batch = emb::SparseBatch::statistical(Rig::spec().batchSpec());
  const SimTime t0 = rig.system.hostNow();
  for (int b = 0; b < batches; ++b) retriever.runBatch(batch);
  const SimTime t1 =
      pipelined != nullptr ? pipelined->drain() : rig.system.syncAll();
  return (t1 - t0).toMs() / batches;
}

TEST(PipelinedTest, HidesWireTimeButKeepsUnpack) {
  const int batches = 12;
  double bulk, piped, pgas;
  core::BatchTiming bulk_timing;
  {
    Rig rig(4);
    CollectiveRetriever r(rig.layer, rig.comm);
    const auto batch =
        emb::SparseBatch::statistical(Rig::spec().batchSpec());
    bulk_timing = r.runBatch(batch);
    bulk = amortizedMs(rig, r, batches);
  }
  {
    Rig rig(4);
    PipelinedCollectiveRetriever r(rig.layer, rig.comm, 2);
    piped = amortizedMs(rig, r, batches, &r);
  }
  {
    Rig rig(4);
    PgasFusedRetriever r(rig.layer, rig.runtime, {});
    pgas = amortizedMs(rig, r, batches);
  }
  // Better than bulk-sync, worse than PGAS (the unpack survives).
  EXPECT_LT(piped, bulk);
  EXPECT_GT(piped, pgas);
  // The win is roughly the hidden wire time.
  EXPECT_NEAR(bulk - piped, bulk_timing.communication().toMs(),
              bulk_timing.communication().toMs() * 0.6);
}

TEST(PipelinedTest, DeeperPipelineNeverSlower) {
  double d2, d3;
  {
    Rig rig(4);
    PipelinedCollectiveRetriever r(rig.layer, rig.comm, 2);
    d2 = amortizedMs(rig, r, 10, &r);
  }
  {
    Rig rig(4);
    PipelinedCollectiveRetriever r(rig.layer, rig.comm, 3);
    d3 = amortizedMs(rig, r, 10, &r);
  }
  EXPECT_LE(d3, d2 * 1.01);
}

TEST(PipelinedTest, ChargesExtraBufferMemory) {
  Rig bulk_rig(2);
  Rig piped_rig(2);
  const auto before_bulk = bulk_rig.system.device(0).memoryUsedBytes();
  CollectiveRetriever bulk(bulk_rig.layer, bulk_rig.comm);
  const auto bulk_bufs =
      bulk_rig.system.device(0).memoryUsedBytes() - before_bulk;
  const auto before_piped = piped_rig.system.device(0).memoryUsedBytes();
  PipelinedCollectiveRetriever piped(piped_rig.layer, piped_rig.comm, 2);
  const auto piped_bufs =
      piped_rig.system.device(0).memoryUsedBytes() - before_piped;
  EXPECT_EQ(piped_bufs, 2 * bulk_bufs);
}

TEST(PipelinedTest, RejectsFunctionalMode) {
  Rig rig(2, gpu::ExecutionMode::kFunctional);
  EXPECT_THROW(PipelinedCollectiveRetriever(rig.layer, rig.comm, 2),
               InvalidArgumentError);
}

TEST(PipelinedTest, DrainIsIdempotent) {
  Rig rig(2);
  PipelinedCollectiveRetriever r(rig.layer, rig.comm, 2);
  const auto batch = emb::SparseBatch::statistical(Rig::spec().batchSpec());
  r.runBatch(batch);
  const SimTime t1 = r.drain();
  const SimTime t2 = r.drain();
  EXPECT_GE(t2, t1);
  EXPECT_LT(t2 - t1, SimTime::us(100));  // just sync overhead
}

}  // namespace
}  // namespace pgasemb::core

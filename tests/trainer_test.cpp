// Tests for the full training path: MLP backprop verified against
// numerical finite-difference gradients, interaction backward, loss
// decrease over SGD steps, and bit-identical training under both EMB
// backward schemes.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "collective/communicator.hpp"
#include "core/pgas_retriever.hpp"
#include "dlrm/trainer.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb::dlrm {
namespace {

// --- MLP backprop vs finite differences ------------------------------------

double scalarLoss(const Mlp& mlp, std::span<const float> input) {
  // L = sum of squares of the outputs — a smooth scalar objective.
  const auto out = mlp.forward(input);
  double l = 0.0;
  for (float v : out) l += 0.5 * v * v;
  return l;
}

TEST(MlpBackpropTest, MatchesNumericalGradients) {
  Mlp mlp(MlpConfig{3, {5, 2}, 77});
  mlp.materialize();
  const std::vector<float> input{0.3f, -0.7f, 0.9f};

  // Analytic gradients: dL/dout = out, backprop.
  const auto acts = mlp.forwardActivations(input);
  std::vector<float> grad_out = acts.back();
  auto grads = mlp.zeroGradients();
  const auto grad_in = mlp.backward(acts, grad_out, grads);

  // Numerical wrt the input.
  const double eps = 1e-3;
  for (std::size_t j = 0; j < input.size(); ++j) {
    auto plus = input;
    auto minus = input;
    plus[j] += static_cast<float>(eps);
    minus[j] -= static_cast<float>(eps);
    const double num =
        (scalarLoss(mlp, plus) - scalarLoss(mlp, minus)) / (2 * eps);
    EXPECT_NEAR(grad_in[j], num, 5e-3) << "input grad " << j;
  }

  // Numerical wrt a sample of weights (layer 0 and layer 1).
  for (const int layer : {0, 1}) {
    for (const int i : {0, 1}) {
      for (const int j : {0, 2}) {
        Mlp probe(MlpConfig{3, {5, 2}, 77});
        probe.materialize();
        auto bump = probe.zeroGradients();
        bump.w[static_cast<std::size_t>(layer)][static_cast<std::size_t>(
            i * probe.inputDim(layer) + j)] = -1.0f;  // +eps via -lr*grad
        probe.applySgd(bump, static_cast<float>(eps));
        const double plus = scalarLoss(probe, input);
        probe.applySgd(bump, static_cast<float>(-2 * eps));
        const double minus = scalarLoss(probe, input);
        const double num = (plus - minus) / (2 * eps);
        EXPECT_NEAR(grads.w[static_cast<std::size_t>(layer)]
                           [static_cast<std::size_t>(
                               i * mlp.inputDim(layer) + j)],
                    num, 5e-3)
            << "w[" << layer << "][" << i << "," << j << "]";
      }
    }
  }
}

TEST(MlpBackpropTest, MaterializeKeepsForwardIdentical) {
  Mlp a(MlpConfig{4, {8, 3}, 5});
  Mlp b(MlpConfig{4, {8, 3}, 5});
  b.materialize();
  const std::vector<float> in{0.1f, 0.2f, 0.3f, 0.4f};
  EXPECT_EQ(a.forward(in), b.forward(in));
}

TEST(MlpBackpropTest, SgdMovesWeights) {
  Mlp mlp(MlpConfig{2, {2}, 3});
  mlp.materialize();
  auto grads = mlp.zeroGradients();
  grads.w[0][0] = 1.0f;
  const float before = mlp.weight(0, 0, 0);
  mlp.applySgd(grads, 0.25f);
  EXPECT_FLOAT_EQ(mlp.weight(0, 0, 0), before - 0.25f);
}

// --- Interaction backward vs finite differences ------------------------------

TEST(InteractionBackpropTest, MatchesNumericalGradients) {
  InteractionLayer layer(InteractionKind::kDotProduct, 3, 2);
  std::vector<float> dense{0.5f, -0.2f, 0.8f};
  std::vector<float> sparse{0.1f, 0.4f, -0.6f, 0.9f, -0.3f, 0.2f};

  auto loss = [&](std::span<const float> d, std::span<const float> s) {
    const auto out = layer.fuse(d, s);
    double l = 0.0;
    for (float v : out) l += 0.5 * v * v;
    return l;
  };

  const auto out = layer.fuse(dense, sparse);
  std::vector<float> grad_dense(3, 0.0f), grad_sparse(6, 0.0f);
  layer.fuseBackward(dense, sparse, out, grad_dense, grad_sparse);

  const double eps = 1e-3;
  for (std::size_t j = 0; j < dense.size(); ++j) {
    auto plus = dense;
    auto minus = dense;
    plus[j] += static_cast<float>(eps);
    minus[j] -= static_cast<float>(eps);
    EXPECT_NEAR(grad_dense[j],
                (loss(plus, sparse) - loss(minus, sparse)) / (2 * eps),
                5e-3);
  }
  for (std::size_t j = 0; j < sparse.size(); ++j) {
    auto plus = sparse;
    auto minus = sparse;
    plus[j] += static_cast<float>(eps);
    minus[j] -= static_cast<float>(eps);
    EXPECT_NEAR(grad_sparse[j],
                (loss(dense, plus) - loss(dense, minus)) / (2 * eps),
                5e-3);
  }
}

TEST(InteractionBackpropTest, ConcatGradsPassThrough) {
  InteractionLayer layer(InteractionKind::kConcat, 2, 1);
  std::vector<float> dense{1.0f, 2.0f}, sparse{3.0f, 4.0f};
  std::vector<float> grad_out{0.1f, 0.2f, 0.3f, 0.4f};
  std::vector<float> gd(2, 0.0f), gs(2, 0.0f);
  layer.fuseBackward(dense, sparse, grad_out, gd, gs);
  EXPECT_FLOAT_EQ(gd[0], 0.1f);
  EXPECT_FLOAT_EQ(gd[1], 0.2f);
  EXPECT_FLOAT_EQ(gs[0], 0.3f);
  EXPECT_FLOAT_EQ(gs[1], 0.4f);
}

// --- End-to-end training -------------------------------------------------------

struct TrainRig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  pgas::PgasRuntime runtime;
  emb::ShardedEmbeddingLayer layer;
  DlrmModel model;
  core::PgasFusedRetriever retriever;

  explicit TrainRig(int gpus)
      : system(config(gpus)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric),
        runtime(system, fabric),
        layer(system, layerSpec()),
        model(modelConfig(), layer),
        retriever(layer, runtime, {}) {}

  static gpu::SystemConfig config(int gpus) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 256 << 20;
    cfg.mode = gpu::ExecutionMode::kFunctional;
    return cfg;
  }
  static emb::EmbLayerSpec layerSpec() {
    emb::EmbLayerSpec spec;
    spec.total_tables = 4;
    spec.rows_per_table = 64;
    spec.dim = 4;
    spec.batch_size = 16;
    spec.min_pooling = 1;
    spec.max_pooling = 3;
    spec.seed = 0x7777;
    spec.index_space = 1u << 10;
    return spec;
  }
  static DlrmConfig modelConfig() {
    DlrmConfig cfg;
    cfg.dense_dim = 4;
    cfg.top_mlp = {8, 4};
    cfg.bottom_mlp = {8, 1};
    return cfg;
  }
};

TEST(TrainerTest, LossDecreasesOverSgdSteps) {
  TrainRig rig(2);
  DlrmTrainer trainer(rig.model, rig.retriever, rig.comm, rig.runtime,
                      /*lr=*/0.05f, BackwardScheme::kPgasAtomics);
  Rng rng(0x600d);
  const auto sparse = emb::SparseBatch::generateUniform(
      TrainRig::layerSpec().batchSpec(), rng);
  const auto dense = DenseBatch::generateUniform(16, 4, rng);
  std::vector<double> losses;
  for (int step = 0; step < 6; ++step) {
    losses.push_back(trainer.step(dense, sparse).loss);
  }
  // Strict decrease on a fixed batch with a small learning rate.
  for (std::size_t i = 1; i < losses.size(); ++i) {
    EXPECT_LT(losses[i], losses[i - 1]) << "step " << i;
  }
  EXPECT_LT(losses.back(), losses.front() * 0.95);
}

TEST(TrainerTest, BothBackwardSchemesTrainIdentically) {
  std::vector<float> final_weights[2];
  double final_loss[2] = {0.0, 0.0};
  for (const auto scheme :
       {BackwardScheme::kCollective, BackwardScheme::kPgasAtomics}) {
    TrainRig rig(3);
    DlrmTrainer trainer(rig.model, rig.retriever, rig.comm, rig.runtime,
                        0.05f, scheme);
    Rng rng(0x600e);
    const auto sparse = emb::SparseBatch::generateUniform(
        TrainRig::layerSpec().batchSpec(), rng);
    const auto dense = DenseBatch::generateUniform(16, 4, rng);
    TrainStepResult last;
    for (int step = 0; step < 3; ++step) last = trainer.step(dense, sparse);
    const int idx = scheme == BackwardScheme::kPgasAtomics ? 1 : 0;
    final_loss[idx] = last.loss;
    auto& w = final_weights[idx];
    const auto spec = TrainRig::layerSpec();
    for (std::int64_t t = 0; t < spec.total_tables; ++t) {
      for (std::int64_t r = 0; r < spec.rows_per_table; ++r) {
        for (int c = 0; c < spec.dim; ++c) {
          w.push_back(rig.layer.table(t).weight(r, c));
        }
      }
    }
    for (int l = 0; l < 2; ++l) {
      w.push_back(rig.model.topMlp().weight(l, 0, 0));
      w.push_back(rig.model.bottomMlp().weight(l, 0, 0));
    }
  }
  EXPECT_EQ(final_weights[0], final_weights[1]);
  EXPECT_EQ(final_loss[0], final_loss[1]);
}

TEST(TrainerTest, StepReportsAllTimingComponents) {
  TrainRig rig(2);
  DlrmTrainer trainer(rig.model, rig.retriever, rig.comm, rig.runtime,
                      0.05f, BackwardScheme::kPgasAtomics);
  Rng rng(0x600f);
  const auto sparse = emb::SparseBatch::generateUniform(
      TrainRig::layerSpec().batchSpec(), rng);
  const auto dense = DenseBatch::generateUniform(16, 4, rng);
  const auto r = trainer.step(dense, sparse);
  EXPECT_GT(r.emb_forward.total, SimTime::zero());
  EXPECT_GT(r.emb_backward.total, SimTime::zero());
  EXPECT_GT(r.mlp_backward_time, SimTime::zero());
  EXPECT_GE(r.total, r.emb_forward.total + r.emb_backward.total);
  EXPECT_GT(r.loss, 0.0);
}

TEST(TrainerTest, LabelsAreDeterministicBinary) {
  for (std::int64_t s = 0; s < 50; ++s) {
    const float y = DlrmTrainer::label(1, s);
    EXPECT_TRUE(y == 0.0f || y == 1.0f);
    EXPECT_EQ(y, DlrmTrainer::label(1, s));
  }
  // Both classes appear.
  int ones = 0;
  for (std::int64_t s = 0; s < 100; ++s) {
    ones += DlrmTrainer::label(2, s) == 1.0f ? 1 : 0;
  }
  EXPECT_GT(ones, 20);
  EXPECT_LT(ones, 80);
}

}  // namespace
}  // namespace pgasemb::dlrm

// Tests for the hot-row replica cache:
//
//  * Zipf workload model: the deterministic sampler's empirical top-k
//    mass converges to the analytic zipfTopMass it shares a harmonic
//    with (the statistical guarantee the cache's hit accounting and the
//    acceptance numbers rest on).
//  * ReplicaCache / CacheFilter semantics: frequency-ranked admission,
//    exact bag partition on materialized batches, miss/serve output
//    conservation, saved-bytes accounting.
//  * FUNCTIONAL EQUIVALENCE: with the cache enabled, both functional
//    retrievers still reproduce the serial reference bit-for-bit (the
//    serve kernel's local pooling overlays exactly the bags the shrunk
//    lookup kernels skipped; the pipelined baseline is timing-only by
//    design and is certified by simsan instead).
//  * TIMING: on the cache-serving configuration the cache delivers the
//    paper-extension speedups, and cache_rows = 0 leaves stats empty.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "emb/replica_cache.hpp"
#include "emb/workload.hpp"
#include "engine/scenario_runner.hpp"
#include "trace/report.hpp"
#include "util/expect.hpp"

namespace pgasemb {
namespace {

// --- Zipf workload model ---------------------------------------------------

TEST(ZipfTest, TopMassDegeneratesToUniformAtAlphaZero) {
  EXPECT_DOUBLE_EQ(emb::zipfTopMass(1000, 0.0, 100), 0.1);
  EXPECT_DOUBLE_EQ(emb::zipfTopMass(1u << 20, 0.0, 1u << 18), 0.25);
}

TEST(ZipfTest, TopMassIsAProperIncreasingCdf) {
  const std::uint64_t n = 1000000;
  double prev = 0.0;
  for (const std::uint64_t k : {1u, 10u, 1000u, 50000u, 1000000u}) {
    const double m = emb::zipfTopMass(n, 0.9, k);
    EXPECT_GT(m, prev) << "k=" << k;
    prev = m;
  }
  EXPECT_DOUBLE_EQ(emb::zipfTopMass(n, 0.9, n), 1.0);
  // More skew concentrates more mass in the same head.
  EXPECT_GT(emb::zipfTopMass(n, 1.1, 50000), emb::zipfTopMass(n, 0.9, 50000));
  EXPECT_GT(emb::zipfTopMass(n, 0.9, 50000), emb::zipfTopMass(n, 0.6, 50000));
}

TEST(ZipfTest, SamplerIsDeterministicUnderFixedSeed) {
  const emb::ZipfSampler sampler(1u << 20, 0.9);
  Rng a(0x2f1f), b(0x2f1f);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(sampler.sample(a), sampler.sample(b)) << "draw " << i;
  }
}

// The statistical contract: empirical top-k frequency matches the
// analytic mass the cache's hit model reports. 200k draws put the
// standard error near 1e-3, so a 0.01 tolerance is ~10 sigma.
TEST(ZipfTest, EmpiricalTopKMassMatchesAnalytic) {
  const std::uint64_t n = 1000000;
  const int draws = 200000;
  for (const double alpha : {0.6, 0.9, 1.1}) {
    const emb::ZipfSampler sampler(n, alpha);
    Rng rng(0x5eed ^ static_cast<std::uint64_t>(alpha * 1000));
    for (const std::uint64_t k : {10000u, 50000u}) {
      int in_head = 0;
      Rng draw_rng = rng;
      for (int i = 0; i < draws; ++i) {
        if (sampler.sample(draw_rng) <= k) ++in_head;
      }
      const double empirical = static_cast<double>(in_head) / draws;
      EXPECT_NEAR(empirical, emb::zipfTopMass(n, alpha, k), 0.01)
          << "alpha=" << alpha << " k=" << k;
    }
  }
}

TEST(ZipfTest, MaterializedBatchIndicesFollowTheSampler) {
  // Raw index = rank - 1, so the hot set of capacity C is raws [0, C)
  // and a batch's fraction of indices below C matches the analytic mass.
  emb::SparseBatchSpec spec;
  spec.num_tables = 8;
  spec.batch_size = 1024;
  spec.min_pooling = 1;
  spec.max_pooling = 8;
  spec.index_space = 1u << 16;
  spec.zipf_alpha = 0.9;
  Rng rng(0x77aa);
  const auto batch = emb::SparseBatch::generateUniform(spec, rng);
  const std::uint64_t capacity = 4096;
  std::int64_t total = 0, hot = 0;
  for (std::int64_t t = 0; t < spec.num_tables; ++t) {
    for (const std::uint64_t raw : batch.indices(t)) {
      ++total;
      if (raw < capacity) ++hot;
    }
  }
  ASSERT_GT(total, 10000);
  EXPECT_NEAR(static_cast<double>(hot) / static_cast<double>(total),
              emb::zipfTopMass(spec.index_space, 0.9, capacity), 0.02);
}

// --- ReplicaCache admission ------------------------------------------------

struct Rig {
  gpu::MultiGpuSystem system;

  explicit Rig(int gpus,
               gpu::ExecutionMode mode = gpu::ExecutionMode::kFunctional)
      : system(makeConfig(gpus, mode)) {}

  static gpu::SystemConfig makeConfig(int gpus, gpu::ExecutionMode mode) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 1 << 30;
    cfg.mode = mode;
    return cfg;
  }
};

emb::EmbLayerSpec cacheTestSpec() {
  emb::EmbLayerSpec spec;
  spec.total_tables = 6;
  spec.rows_per_table = 64;
  spec.dim = 4;
  spec.batch_size = 10;
  spec.min_pooling = 0;  // include NULL inputs (trivially served)
  spec.max_pooling = 4;
  spec.seed = 0xca5e;
  spec.index_space = 1u << 10;
  spec.zipf_alpha = 0.9;
  return spec;
}

TEST(ReplicaCacheTest, FrequencyRankedAdmission) {
  Rig rig(2);
  const auto spec = cacheTestSpec();
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  emb::ReplicaCache cache(layer, 12);
  EXPECT_EQ(cache.capacityRows(), 12);
  EXPECT_TRUE(cache.hitsIndex(0));
  EXPECT_TRUE(cache.hitsIndex(11));
  EXPECT_FALSE(cache.hitsIndex(12));
  // The analytic per-index hit probability is the Zipf head mass.
  EXPECT_DOUBLE_EQ(cache.indexHitRate(),
                   emb::zipfTopMass(spec.index_space, spec.zipf_alpha, 12));
  // One replica block per GPU: total_tables x capacity x dim elements.
  for (int g = 0; g < 2; ++g) {
    EXPECT_EQ(cache.replica(g).size(),
              spec.total_tables * 12 * spec.dim);
  }
}

TEST(ReplicaCacheTest, UniformWorkloadHitRateIsCapacityFraction) {
  Rig rig(2);
  auto spec = cacheTestSpec();
  spec.zipf_alpha = 0.0;
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  emb::ReplicaCache cache(layer, 256);
  EXPECT_DOUBLE_EQ(cache.indexHitRate(), 256.0 / spec.index_space);
}

TEST(ReplicaCacheTest, CapacityClampsToIndexSpace) {
  Rig rig(2);
  const auto spec = cacheTestSpec();
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  emb::ReplicaCache cache(layer, 1 << 20);
  EXPECT_EQ(cache.capacityRows(),
            static_cast<std::int64_t>(spec.index_space));
  EXPECT_DOUBLE_EQ(cache.indexHitRate(), 1.0);
}

TEST(ReplicaCacheTest, RowWiseShardingIsRejected) {
  Rig rig(2);
  const auto spec = cacheTestSpec();
  emb::ShardedEmbeddingLayer layer(rig.system, spec,
                                   emb::ShardingScheme::kRowWise);
  EXPECT_THROW(emb::ReplicaCache(layer, 12), InvalidArgumentError);
}

// --- CacheFilter: exact partition on materialized batches ------------------

TEST(CacheFilterTest, MaterializedPartitionIsExact) {
  const int gpus = 3;
  Rig rig(gpus);
  const auto spec = cacheTestSpec();
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  emb::ReplicaCache cache(layer, 100);
  Rng rng(0xf11e);
  const auto batch = emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
  const emb::CacheFilter filter(layer, batch, cache);
  const auto& sh = layer.sharding();

  // Brute force over every bag: served iff ALL its indices are hot.
  double lookups = 0.0, hits = 0.0, saved = 0.0;
  std::vector<std::int64_t> served_to(gpus, 0);
  std::vector<std::vector<std::int64_t>> miss_to(
      gpus, std::vector<std::int64_t>(gpus, 0));
  for (std::int64_t t = 0; t < spec.total_tables; ++t) {
    const int owner = sh.tableOwner(t);
    for (std::int64_t s = 0; s < spec.batch_size; ++s) {
      const int dst = sh.sampleOwner(s);
      bool all_hot = true;
      std::int64_t bag = 0;
      const auto offsets = batch.offsets(t);
      const auto indices = batch.indices(t);
      for (std::int64_t i = offsets[s]; i < offsets[s + 1]; ++i) {
        ++bag;
        all_hot = all_hot && cache.hitsIndex(indices[i]);
      }
      lookups += static_cast<double>(bag);
      EXPECT_EQ(filter.bagServed(t, s), all_hot) << "t=" << t << " s=" << s;
      if (all_hot) {
        hits += static_cast<double>(bag);
        ++served_to[dst];
        if (dst != owner) saved += static_cast<double>(spec.dim) * 4.0;
      } else {
        ++miss_to[owner][dst];
      }
    }
  }
  EXPECT_DOUBLE_EQ(filter.lookups(), lookups);
  EXPECT_DOUBLE_EQ(filter.hits(), hits);
  EXPECT_DOUBLE_EQ(filter.savedWireBytes(), saved);
  EXPECT_GT(filter.hits(), 0.0);
  EXPECT_LT(filter.hits(), filter.lookups());

  for (int g = 0; g < gpus; ++g) {
    // Serve work pools hit bags of g's own mini-batch, locally only.
    const auto& serve = filter.serveWork(g);
    for (int d = 0; d < gpus; ++d) {
      EXPECT_EQ(serve.outputs_to[d], d == g ? served_to[g] : 0)
          << "serve g=" << g << " d=" << d;
    }
    // Miss work is the owner-side residual lookup.
    const auto& miss = filter.missWork(g);
    for (int d = 0; d < gpus; ++d) {
      EXPECT_EQ(miss.outputs_to[d], miss_to[g][d]) << "g=" << g << " d=" << d;
    }
  }

  // Conservation: every bag of dst's mini-batch is either served locally
  // or produced by some owner's miss lookup.
  for (int d = 0; d < gpus; ++d) {
    std::int64_t produced = filter.serveWork(d).outputs_to[d];
    for (int g = 0; g < gpus; ++g) {
      produced += filter.missWork(g).outputs_to[d];
    }
    EXPECT_EQ(produced, spec.total_tables * sh.miniBatchSize(d)) << d;
  }
}

TEST(CacheFilterTest, StatisticalCountsMatchMaterializedInExpectation) {
  // Same spec, one statistical filter vs many materialized ones: the
  // expectation model must sit inside the empirical spread.
  const int gpus = 2;
  Rig rig(gpus, gpu::ExecutionMode::kTimingOnly);
  auto spec = cacheTestSpec();
  spec.batch_size = 64;
  spec.min_pooling = 1;
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  emb::ReplicaCache cache(layer, 100);
  const emb::CacheFilter expectation(
      layer, emb::SparseBatch::statistical(spec.batchSpec()), cache);
  double hit_sum = 0.0, lookup_sum = 0.0;
  Rng rng(0xeeee);
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    const emb::CacheFilter exact(
        layer, emb::SparseBatch::generateUniform(spec.batchSpec(), rng),
        cache);
    hit_sum += exact.hits();
    lookup_sum += exact.lookups();
  }
  EXPECT_NEAR(expectation.lookups(), lookup_sum / trials,
              0.05 * expectation.lookups());
  EXPECT_NEAR(expectation.hits(), hit_sum / trials,
              0.10 * expectation.hits());
}

// --- Functional equivalence with the cache enabled -------------------------

engine::ExperimentConfig functionalCachedConfig(int gpus) {
  engine::ExperimentConfig cfg;
  cfg.layer = cacheTestSpec();
  cfg.num_gpus = gpus;
  cfg.num_batches = 1;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.pgas_slices = 4;
  cfg.cache_rows = 100;
  return cfg;
}

class CachedEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(CachedEquivalence, MatchesSerialReference) {
  const auto& [name, gpus] = GetParam();
  const auto cfg = functionalCachedConfig(gpus);
  engine::SystemBuilder builder(cfg);
  ASSERT_NE(builder.cache(), nullptr);
  auto retriever =
      core::RetrieverRegistry::instance().create(name, builder.context());
  Rng rng(0xfeed);
  const auto batch =
      emb::SparseBatch::generateUniform(cfg.layer.batchSpec(), rng);
  // Sanity: this batch genuinely exercises both paths.
  const emb::CacheFilter filter(builder.layer(), batch, *builder.cache());
  ASSERT_GT(filter.hits(), 0.0);
  ASSERT_LT(filter.hits(), filter.lookups());

  const auto timing = retriever->runBatch(batch);
  retriever->finish();  // drain (pipelined holds batches in flight)
  EXPECT_GT(timing.cache_lookups, 0.0);
  for (int g = 0; g < gpus; ++g) {
    const auto n =
        builder.layer().sharding().outputElements(g, cfg.layer.dim);
    const auto ref = builder.layer().referenceOutput(batch, g);
    const auto s = retriever->output(g).span();
    const std::vector<float> out(s.begin(), s.begin() + n);
    EXPECT_EQ(out, ref) << name << " mismatch on gpu " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    FunctionalRetrievers, CachedEquivalence,
    ::testing::Combine(::testing::Values("nccl_collective", "pgas_fused"),
                       ::testing::Values(2, 3, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_" +
             std::to_string(std::get<1>(info.param)) + "gpus";
    });

// --- Timing: acceptance speedups and cache-off neutrality ------------------

TEST(CacheTimingTest, ServingConfigSpeedupsAtPaperScale) {
  // The headline extension numbers: Zipf 0.9 inference traffic, a 5%
  // replica (50k of 1M rows) on the PCIe-class serving node.
  auto cfg = engine::cacheServingConfig(4);
  cfg.num_batches = 3;
  cfg.layer.zipf_alpha = 0.9;
  const double analytic =
      emb::zipfTopMass(cfg.layer.index_space, 0.9, 50000);

  engine::ScenarioRunner baseline(cfg);
  cfg.cache_rows = 50000;
  engine::ScenarioRunner cached(cfg);
  for (const auto& [name, floor] :
       std::vector<std::pair<std::string, double>>{
           {"pgas_fused", 1.3}, {"nccl_collective", 1.2}}) {
    const auto without = baseline.run(name);
    const auto with = cached.run(name);
    EXPECT_GE(without.avgBatchMs() / with.avgBatchMs(), floor) << name;
    EXPECT_GE(with.cacheHitRate(), analytic - 0.02) << name;
    EXPECT_GT(with.cacheSavedBytes(), 0.0) << name;
    // The cache can only remove exchange traffic, never add it.
    EXPECT_LT(with.total_wire_bytes, without.total_wire_bytes) << name;
  }
}

TEST(CacheTimingTest, ZeroRowsIsNeutral) {
  // cache_rows = 0 must take exactly the historical code paths: no
  // counters, no cache table, no extra CSV columns (absent-neutral).
  auto cfg = engine::cacheServingConfig(2);
  cfg.num_batches = 2;
  cfg.layer.zipf_alpha = 0.9;
  engine::SystemBuilder builder(cfg);
  EXPECT_EQ(builder.cache(), nullptr);
  const auto result = engine::ScenarioRunner(cfg).run("nccl_collective");
  EXPECT_EQ(result.stats.cache_lookups, 0.0);
  EXPECT_EQ(result.cacheHitRate(), 0.0);
  EXPECT_EQ(result.cacheSavedBytes(), 0.0);
  trace::ScalingPoint point;
  point.gpus = 2;
  point.runs = {{"nccl_collective", result}};
  EXPECT_EQ(trace::renderCacheTable({point}), "");
}

TEST(CacheTimingTest, CachedRunsPopulateTheReportTable) {
  auto cfg = engine::cacheServingConfig(2);
  cfg.num_batches = 2;
  cfg.layer.zipf_alpha = 0.9;
  cfg.cache_rows = 10000;
  const auto result = engine::ScenarioRunner(cfg).run("nccl_collective");
  EXPECT_GT(result.stats.cache_lookups, 0.0);
  trace::ScalingPoint point;
  point.gpus = 2;
  point.runs = {{"nccl_collective", result}};
  const std::string table = trace::renderCacheTable({point});
  EXPECT_NE(table.find("hit rate"), std::string::npos);
}

}  // namespace
}  // namespace pgasemb

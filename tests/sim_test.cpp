// Unit tests for the discrete-event engine: ordering, determinism,
// resource FIFO semantics.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hpp"
#include "sim/fifo_resource.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace pgasemb::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::us(3), [&] { order.push_back(3); });
  q.push(SimTime::us(1), [&] { order.push_back(1); });
  q.push(SimTime::us(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::us(5), [&, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReflectsHead) {
  EventQueue q;
  EXPECT_EQ(q.nextTime(), SimTime::max());
  q.push(SimTime::us(7), [] {});
  EXPECT_EQ(q.nextTime(), SimTime::us(7));
}

TEST(EventQueueTest, SlotRecyclingSurvivesManyEvents) {
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) {
      q.push(SimTime::us(round), [&] { ++fired; });
    }
    while (!q.empty()) q.pop().fn();
  }
  EXPECT_EQ(fired, 800);
}

TEST(SimulatorTest, RunAdvancesClock) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.scheduleAt(SimTime::us(10), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::us(10));
  EXPECT_EQ(sim.now(), SimTime::us(10));
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<double> times;
  sim.scheduleAt(SimTime::us(1), [&] {
    times.push_back(sim.now().toUs());
    sim.scheduleAfter(SimTime::us(2), [&] {
      times.push_back(sim.now().toUs());
    });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.scheduleAt(SimTime::us(5), [&] {
    EXPECT_THROW(sim.scheduleAt(SimTime::us(1), [] {}), Error);
  });
  sim.run();
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(SimTime::us(1), [&] { ++fired; });
  sim.scheduleAt(SimTime::us(10), [&] { ++fired; });
  sim.runUntil(SimTime::us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::us(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.scheduleAt(SimTime::us(i), [] {});
  sim.run();
  EXPECT_EQ(sim.eventsProcessed(), 17u);
}

TEST(SimulatorTest, AdvanceClockMovesForwardOnly) {
  Simulator sim;
  sim.advanceClock(SimTime::us(4));
  EXPECT_EQ(sim.now(), SimTime::us(4));
  sim.advanceClock(SimTime::us(2));  // no-op backwards
  EXPECT_EQ(sim.now(), SimTime::us(4));
}

TEST(FifoResourceTest, BackToBackRequestsQueue) {
  FifoResource r("r");
  const auto g1 = r.acquire(SimTime::us(0), SimTime::us(10));
  EXPECT_EQ(g1.start, SimTime::us(0));
  EXPECT_EQ(g1.end, SimTime::us(10));
  // Arrives while busy: queued behind g1.
  const auto g2 = r.acquire(SimTime::us(3), SimTime::us(5));
  EXPECT_EQ(g2.start, SimTime::us(10));
  EXPECT_EQ(g2.end, SimTime::us(15));
  // Arrives after idle: starts immediately.
  const auto g3 = r.acquire(SimTime::us(20), SimTime::us(1));
  EXPECT_EQ(g3.start, SimTime::us(20));
}

TEST(FifoResourceTest, TracksBusyTimeAndUtilization) {
  FifoResource r("r");
  r.acquire(SimTime::us(0), SimTime::us(10));
  r.acquire(SimTime::us(30), SimTime::us(10));
  EXPECT_EQ(r.busyTime(), SimTime::us(20));
  EXPECT_DOUBLE_EQ(r.utilization(SimTime::us(40)), 0.5);
}

TEST(FifoResourceTest, BacklogMeasuresPendingWork) {
  FifoResource r("r");
  r.acquire(SimTime::us(0), SimTime::us(10));
  EXPECT_EQ(r.backlog(SimTime::us(4)), SimTime::us(6));
  EXPECT_EQ(r.backlog(SimTime::us(11)), SimTime::zero());
}

TEST(FifoResourceTest, ResetClearsState) {
  FifoResource r("r");
  r.acquire(SimTime::us(0), SimTime::us(10));
  r.reset();
  EXPECT_EQ(r.busyTime(), SimTime::zero());
  EXPECT_EQ(r.freeAt(), SimTime::zero());
}

TEST(FifoResourceTest, ZeroDurationGrantIsInstant) {
  FifoResource r("r");
  const auto g = r.acquire(SimTime::us(5), SimTime::zero());
  EXPECT_EQ(g.start, g.end);
}

}  // namespace
}  // namespace pgasemb::sim

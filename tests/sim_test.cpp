// Unit tests for the discrete-event engine: ordering, determinism,
// resource FIFO semantics, the small-buffer EventFn callable, and the
// event queue's slot arena (clear-on-pop, high-water shrink).
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/event_fn.hpp"
#include "sim/event_queue.hpp"
#include "sim/fifo_resource.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace pgasemb::sim {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(SimTime::us(3), [&] { order.push_back(3); });
  q.push(SimTime::us(1), [&] { order.push_back(1); });
  q.push(SimTime::us(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(SimTime::us(5), [&, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueueTest, NextTimeReflectsHead) {
  EventQueue q;
  EXPECT_EQ(q.nextTime(), SimTime::max());
  q.push(SimTime::us(7), [] {});
  EXPECT_EQ(q.nextTime(), SimTime::us(7));
}

TEST(EventQueueTest, SlotRecyclingSurvivesManyEvents) {
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 8; ++i) {
      q.push(SimTime::us(round), [&] { ++fired; });
    }
    while (!q.empty()) q.pop().fn();
  }
  EXPECT_EQ(fired, 800);
}

TEST(EventFnTest, InlineCallableRuns) {
  int hits = 0;
  EventFn fn([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(fn));
  fn();
  EXPECT_EQ(hits, 1);
}

TEST(EventFnTest, OverflowCallableRunsAndDestroys) {
  // A capture larger than the inline buffer forces the slab path; the
  // shared_ptr use counts prove construction, move, and destruction.
  auto tracker = std::make_shared<int>(0);
  std::array<std::int64_t, 16> big{};  // 128 B > kInlineBytes
  big[0] = 41;
  {
    EventFn fn([tracker, big] { *tracker = static_cast<int>(big[0]) + 1; });
    EXPECT_EQ(tracker.use_count(), 2);
    EventFn moved(std::move(fn));
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_EQ(tracker.use_count(), 2);  // move transfers, never copies
    moved();
  }
  EXPECT_EQ(*tracker, 42);
  EXPECT_EQ(tracker.use_count(), 1);  // destructor released the capture
}

TEST(EventFnTest, MoveAssignReleasesPreviousTarget) {
  auto a = std::make_shared<int>(1);
  auto b = std::make_shared<int>(2);
  EventFn fn([a] {});
  EventFn other([b] {});
  fn = std::move(other);
  EXPECT_EQ(a.use_count(), 1);  // old target destroyed on assignment
  EXPECT_EQ(b.use_count(), 2);
  EXPECT_FALSE(static_cast<bool>(other));
}

TEST(EventQueueTest, PopClearsStoredCallable) {
  // The callable's captures must be released when the event fires, not
  // when its arena slot happens to be reused by a later push.
  EventQueue q;
  auto payload = std::make_shared<int>(0);
  q.push(SimTime::us(1), [payload] { *payload = 7; });
  EXPECT_EQ(payload.use_count(), 2);
  auto e = q.pop();
  e.fn();
  e.fn.reset();
  EXPECT_EQ(*payload, 7);
  EXPECT_EQ(payload.use_count(), 1);  // no copy left in storage_
}

TEST(EventQueueTest, DrainShrinksStorageAfterBurst) {
  EventQueue q;
  const std::size_t burst = EventQueue::kShrinkSlots + 100;
  for (std::size_t i = 0; i < burst; ++i) {
    q.push(SimTime(static_cast<std::int64_t>(i + 1)), [] {});
  }
  EXPECT_EQ(q.storageSlots(), burst);
  while (!q.empty()) q.pop();
  // Fully drained past the high-water mark: the arena is released
  // instead of pinning burst-peak memory for the rest of the run.
  EXPECT_EQ(q.storageSlots(), 0u);
}

TEST(EventQueueTest, SmallBurstsKeepTheirArena) {
  EventQueue q;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 32; ++i) q.push(SimTime::us(round + 1), [] {});
    while (!q.empty()) q.pop();
  }
  // Below the shrink threshold the slots stay allocated for reuse.
  EXPECT_EQ(q.storageSlots(), 32u);
}

TEST(SimulatorTest, ScheduleBatchPreservesOrderAndDeterminism) {
  // A batch with ties must fire in batch order, interleaved correctly
  // with individually scheduled events at other times.
  Simulator sim;
  std::vector<int> order;
  sim.scheduleAt(SimTime::us(2), [&] { order.push_back(100); });
  std::vector<EventQueue::Batch> batch;
  for (int i = 0; i < 5; ++i) {
    batch.push_back({SimTime::us(1), [&order, i] { order.push_back(i); }});
  }
  batch.push_back({SimTime::us(3), [&order] { order.push_back(200); }});
  sim.scheduleBatch(batch);
  EXPECT_TRUE(batch.empty());  // consumed, capacity kept for reuse
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 100, 200}));
}

TEST(SimulatorTest, ScheduleBatchInPastThrows) {
  Simulator sim;
  sim.scheduleAt(SimTime::us(5), [&] {
    std::vector<EventQueue::Batch> batch;
    batch.push_back({SimTime::us(1), [] {}});
    EXPECT_THROW(sim.scheduleBatch(batch), Error);
  });
  sim.run();
}

TEST(SimulatorTest, RunAdvancesClock) {
  Simulator sim;
  SimTime seen = SimTime::zero();
  sim.scheduleAt(SimTime::us(10), [&] { seen = sim.now(); });
  sim.run();
  EXPECT_EQ(seen, SimTime::us(10));
  EXPECT_EQ(sim.now(), SimTime::us(10));
  EXPECT_TRUE(sim.idle());
}

TEST(SimulatorTest, NestedSchedulingWorks) {
  Simulator sim;
  std::vector<double> times;
  sim.scheduleAt(SimTime::us(1), [&] {
    times.push_back(sim.now().toUs());
    sim.scheduleAfter(SimTime::us(2), [&] {
      times.push_back(sim.now().toUs());
    });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 3.0);
}

TEST(SimulatorTest, SchedulingInPastThrows) {
  Simulator sim;
  sim.scheduleAt(SimTime::us(5), [&] {
    EXPECT_THROW(sim.scheduleAt(SimTime::us(1), [] {}), Error);
  });
  sim.run();
}

TEST(SimulatorTest, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(SimTime::us(1), [&] { ++fired; });
  sim.scheduleAt(SimTime::us(10), [&] { ++fired; });
  sim.runUntil(SimTime::us(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime::us(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, EventsProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 17; ++i) sim.scheduleAt(SimTime::us(i), [] {});
  sim.run();
  EXPECT_EQ(sim.eventsProcessed(), 17u);
}

TEST(SimulatorTest, AdvanceClockMovesForwardOnly) {
  Simulator sim;
  sim.advanceClock(SimTime::us(4));
  EXPECT_EQ(sim.now(), SimTime::us(4));
  sim.advanceClock(SimTime::us(2));  // no-op backwards
  EXPECT_EQ(sim.now(), SimTime::us(4));
}

TEST(SimulatorTest, AdvanceClockPastPendingEventThrows) {
  // Silently hopping the host clock over an unfired event would deliver
  // it "in the past" — the precondition is a drained queue up to `to`.
  Simulator sim;
  int fired = 0;
  sim.scheduleAt(SimTime::us(3), [&] { ++fired; });
  EXPECT_THROW(sim.advanceClock(SimTime::us(10)), Error);
  EXPECT_EQ(sim.now(), SimTime::zero());  // clock untouched on throw
  // Advancing exactly to the earliest pending event is allowed: nothing
  // is skipped, run() will still fire it at its own timestamp.
  sim.advanceClock(SimTime::us(3));
  EXPECT_EQ(sim.now(), SimTime::us(3));
  sim.run();
  EXPECT_EQ(fired, 1);
}

TEST(FifoResourceTest, BackToBackRequestsQueue) {
  FifoResource r("r");
  const auto g1 = r.acquire(SimTime::us(0), SimTime::us(10));
  EXPECT_EQ(g1.start, SimTime::us(0));
  EXPECT_EQ(g1.end, SimTime::us(10));
  // Arrives while busy: queued behind g1.
  const auto g2 = r.acquire(SimTime::us(3), SimTime::us(5));
  EXPECT_EQ(g2.start, SimTime::us(10));
  EXPECT_EQ(g2.end, SimTime::us(15));
  // Arrives after idle: starts immediately.
  const auto g3 = r.acquire(SimTime::us(20), SimTime::us(1));
  EXPECT_EQ(g3.start, SimTime::us(20));
}

TEST(FifoResourceTest, TracksBusyTimeAndUtilization) {
  FifoResource r("r");
  r.acquire(SimTime::us(0), SimTime::us(10));
  r.acquire(SimTime::us(30), SimTime::us(10));
  EXPECT_EQ(r.busyTime(), SimTime::us(20));
  EXPECT_DOUBLE_EQ(r.utilization(SimTime::us(40)), 0.5);
}

TEST(FifoResourceTest, BacklogMeasuresPendingWork) {
  FifoResource r("r");
  r.acquire(SimTime::us(0), SimTime::us(10));
  EXPECT_EQ(r.backlog(SimTime::us(4)), SimTime::us(6));
  EXPECT_EQ(r.backlog(SimTime::us(11)), SimTime::zero());
}

TEST(FifoResourceTest, ResetClearsState) {
  FifoResource r("r");
  r.acquire(SimTime::us(0), SimTime::us(10));
  r.reset();
  EXPECT_EQ(r.busyTime(), SimTime::zero());
  EXPECT_EQ(r.freeAt(), SimTime::zero());
}

TEST(FifoResourceTest, ZeroDurationGrantIsInstant) {
  FifoResource r("r");
  const auto g = r.acquire(SimTime::us(5), SimTime::zero());
  EXPECT_EQ(g.start, g.end);
}

}  // namespace
}  // namespace pgasemb::sim

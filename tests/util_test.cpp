// Unit tests for the util module: SimTime arithmetic, RNG determinism and
// distribution sanity, statistics helpers, table/CSV/CLI formatting.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/ascii_chart.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/expect.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace pgasemb {
namespace {

// --- SimTime ---------------------------------------------------------------

TEST(SimTimeTest, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimTime::ns(1.0).count(), 1000);
  EXPECT_EQ(SimTime::us(1.0).count(), 1'000'000);
  EXPECT_EQ(SimTime::ms(1.0).count(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::us(12.5).toUs(), 12.5);
  EXPECT_DOUBLE_EQ(SimTime::sec(2.0).toSec(), 2.0);
}

TEST(SimTimeTest, Arithmetic) {
  const SimTime a = SimTime::us(10);
  const SimTime b = SimTime::us(4);
  EXPECT_EQ((a + b).toUs(), 14.0);
  EXPECT_EQ((a - b).toUs(), 6.0);
  EXPECT_EQ((a * 3).toUs(), 30.0);
  EXPECT_EQ((a / 2).toUs(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_EQ(a * 0.5, SimTime::us(5));
}

TEST(SimTimeTest, Comparisons) {
  EXPECT_LT(SimTime::ns(999), SimTime::us(1));
  EXPECT_EQ(SimTime::us(1), SimTime::ns(1000));
  EXPECT_GT(SimTime::ms(1), SimTime::us(999));
}

TEST(SimTimeTest, ToStringPicksUnit) {
  EXPECT_NE(SimTime::ns(5).toString().find("ns"), std::string::npos);
  EXPECT_NE(SimTime::us(5).toString().find("us"), std::string::npos);
  EXPECT_NE(SimTime::ms(5).toString().find("ms"), std::string::npos);
  EXPECT_NE(SimTime::sec(5).toString().find("s"), std::string::npos);
}

// --- Rng ---------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.nextBounded(17), 17u);
  }
}

TEST(RngTest, UniformIntIsInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniformInt(3, 6);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 6);
    saw_lo |= (v == 3);
    saw_hi |= (v == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleMeanIsCentered) {
  Rng rng(11);
  RunningStat s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniformDouble());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_GE(s.min(), 0.0);
  EXPECT_LT(s.max(), 1.0);
}

TEST(RngTest, NormalMeanAndVariance) {
  Rng rng(13);
  RunningStat s;
  for (int i = 0; i < 40000; ++i) s.add(rng.normal());
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(99);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(RngTest, SplitMixIsStateless) {
  EXPECT_EQ(splitmix64(123), splitmix64(123));
  EXPECT_NE(splitmix64(123), splitmix64(124));
}

// --- Stats ---------------------------------------------------------------------

TEST(StatsTest, RunningStatBasics) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StatsTest, GeomeanMatchesPaperStyleSpeedups) {
  // The paper reports geo-mean 1.97x from {2.10, 1.95, 1.87}.
  EXPECT_NEAR(geomean({2.10, 1.95, 1.87}), 1.97, 0.005);
  // And 2.63x from {2.95, 2.55, 2.44}.
  EXPECT_NEAR(geomean({2.95, 2.55, 2.44}), 2.64, 0.01);
}

TEST(StatsTest, GeomeanRejectsNonPositive) {
  EXPECT_THROW(geomean({1.0, 0.0}), InvalidArgumentError);
  EXPECT_THROW(geomean({-1.0}), InvalidArgumentError);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
  EXPECT_DOUBLE_EQ(median({1, 3, 2, 4}), 2.5);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geomean({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

// --- ConsoleTable -----------------------------------------------------------

TEST(TableTest, RendersAlignedColumns) {
  ConsoleTable t({"Speedup", "2 GPUs", "3 GPUs", "4 GPUs"});
  t.addRow({"PGAS over baseline", "2.10x", "1.95x", "1.87x"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Speedup"), std::string::npos);
  EXPECT_NE(out.find("2.10x"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, RejectsWrongArity) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.addRow({"only one"}), InvalidArgumentError);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(ConsoleTable::num(1.977, 2), "1.98");
  EXPECT_EQ(ConsoleTable::num(2.0, 0), "2");
}

// --- CSV ---------------------------------------------------------------------

TEST(CsvTest, WritesAndEscapes) {
  const std::string path = "/tmp/pgasemb_csv_test.csv";
  {
    CsvWriter w(path, {"name", "value"});
    w.addRow({"plain", "1"});
    w.addRow({"with,comma", "2"});
    w.addRow({"with\"quote", "3"});
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string content = ss.str();
  EXPECT_NE(content.find("name,value"), std::string::npos);
  EXPECT_NE(content.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(content.find("\"with\"\"quote\""), std::string::npos);
  std::filesystem::remove(path);
}

TEST(CsvTest, RejectsWrongArity) {
  const std::string path = "/tmp/pgasemb_csv_test2.csv";
  CsvWriter w(path, {"a"});
  EXPECT_THROW(w.addRow({"1", "2"}), InvalidArgumentError);
  w.close();
  std::filesystem::remove(path);
}

// --- CLI ---------------------------------------------------------------------

TEST(CliTest, DefaultsAndOverrides) {
  CliParser cli("test");
  cli.addInt("gpus", 4, "gpu count");
  cli.addDouble("scale", 1.5, "scale");
  cli.addString("mode", "weak", "mode");
  cli.addBool("verbose", false, "verbosity");

  const char* argv[] = {"prog", "--gpus", "2", "--mode=strong", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.getInt("gpus"), 2);
  EXPECT_DOUBLE_EQ(cli.getDouble("scale"), 1.5);
  EXPECT_EQ(cli.getString("mode"), "strong");
  EXPECT_TRUE(cli.getBool("verbose"));
}

TEST(CliTest, UnknownFlagThrows) {
  CliParser cli("test");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_THROW(cli.parse(3, argv), InvalidArgumentError);
}

TEST(CliTest, BadIntValueThrowsAtParseTime) {
  // Malformed values are rejected when the flag is parsed, not when the
  // bench later reads it — the run never starts on garbage input.
  CliParser cli("test");
  cli.addInt("n", 1, "n");
  const char* argv[] = {"prog", "--n", "abc"};
  EXPECT_THROW(cli.parse(3, argv), InvalidArgumentError);
}

TEST(CliTest, TrailingJunkIntRejected) {
  // std::stoll would silently accept "12abc" as 12; the strict parser
  // must consume the whole string.
  CliParser cli("test");
  cli.addInt("n", 1, "n");
  const char* argv[] = {"prog", "--n", "12abc"};
  EXPECT_THROW(cli.parse(3, argv), InvalidArgumentError);
}

TEST(CliTest, BadDoubleAndBoolValuesThrowAtParseTime) {
  CliParser cli("test");
  cli.addDouble("scale", 1.0, "scale");
  cli.addBool("flag", false, "flag");
  const char* bad_double[] = {"prog", "--scale", "1.5x"};
  EXPECT_THROW(cli.parse(3, bad_double), InvalidArgumentError);
  const char* bad_bool[] = {"prog", "--flag=maybe"};
  EXPECT_THROW(cli.parse(2, bad_bool), InvalidArgumentError);
}

TEST(CliTest, ParseOrExitFailsCleanlyOnUnknownFlag) {
  CliParser cli("test");
  cli.addInt("n", 1, "n");
  const char* argv[] = {"prog", "--nope", "1"};
  EXPECT_EXIT(cli.parseOrExit(3, argv), ::testing::ExitedWithCode(2),
              "unknown flag");
}

TEST(CliTest, ParseOrExitFailsCleanlyOnMalformedValue) {
  CliParser cli("test");
  cli.addInt("n", 1, "n");
  const char* argv[] = {"prog", "--n", "four"};
  EXPECT_EXIT(cli.parseOrExit(3, argv), ::testing::ExitedWithCode(2),
              "--help for usage");
}

TEST(ParseStrictTest, IntAcceptsFullStringsOnly) {
  EXPECT_EQ(parseIntStrict("42", "t"), 42);
  EXPECT_EQ(parseIntStrict("-7", "t"), -7);
  EXPECT_THROW(parseIntStrict("", "t"), InvalidArgumentError);
  EXPECT_THROW(parseIntStrict("12abc", "t"), InvalidArgumentError);
  EXPECT_THROW(parseIntStrict("1.5", "t"), InvalidArgumentError);
  EXPECT_THROW(parseIntStrict("abc", "t"), InvalidArgumentError);
}

TEST(ParseStrictTest, DoubleAcceptsFullStringsOnly) {
  EXPECT_DOUBLE_EQ(parseDoubleStrict("0.5", "t"), 0.5);
  EXPECT_DOUBLE_EQ(parseDoubleStrict("-2", "t"), -2.0);
  EXPECT_THROW(parseDoubleStrict("", "t"), InvalidArgumentError);
  EXPECT_THROW(parseDoubleStrict("1.5x", "t"), InvalidArgumentError);
  EXPECT_THROW(parseDoubleStrict("nanananana", "t"), InvalidArgumentError);
}

TEST(ParseStrictTest, BoolAcceptsKnownSpellings) {
  EXPECT_TRUE(parseBoolStrict("true", "t"));
  EXPECT_TRUE(parseBoolStrict("1", "t"));
  EXPECT_TRUE(parseBoolStrict("yes", "t"));
  EXPECT_FALSE(parseBoolStrict("false", "t"));
  EXPECT_FALSE(parseBoolStrict("0", "t"));
  EXPECT_FALSE(parseBoolStrict("no", "t"));
  EXPECT_THROW(parseBoolStrict("maybe", "t"), InvalidArgumentError);
}

TEST(ParseStrictTest, ErrorMessagesNameTheFlag) {
  try {
    parseIntStrict("abc", "flag --gpus");
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("--gpus"), std::string::npos);
  }
}

TEST(CliTest, UsageListsFlags) {
  CliParser cli("my tool");
  cli.addInt("batch", 16384, "batch size");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("my tool"), std::string::npos);
  EXPECT_NE(u.find("--batch"), std::string::npos);
  EXPECT_NE(u.find("16384"), std::string::npos);
}

// --- Charts --------------------------------------------------------------------

TEST(ChartTest, LineChartRendersSeriesAndLegend) {
  AsciiLineChart chart("Weak scaling", 40, 10);
  chart.addSeries({"baseline", {1, 2, 3, 4}, {1.0, 0.46, 0.48, 0.47}, 'b'});
  chart.addSeries({"pgas", {1, 2, 3, 4}, {1.0, 0.95, 0.93, 0.9}, 'p'});
  chart.setAxisLabels("GPUs", "scaling factor");
  const std::string out = chart.render();
  EXPECT_NE(out.find("Weak scaling"), std::string::npos);
  EXPECT_NE(out.find("b = baseline"), std::string::npos);
  EXPECT_NE(out.find("p = pgas"), std::string::npos);
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(ChartTest, StackedBarsRenderSegments) {
  AsciiStackedBars bars("Breakdown", {"compute", "comm", "sync+unpack"});
  bars.addBar("baseline 2gpu", {5.0, 3.0, 2.0});
  bars.addBar("pgas 2gpu", {5.5, 0.0, 0.0});
  const std::string out = bars.render();
  EXPECT_NE(out.find("Breakdown"), std::string::npos);
  EXPECT_NE(out.find("legend:"), std::string::npos);
  EXPECT_NE(out.find("compute"), std::string::npos);
}

TEST(ChartTest, RejectsMismatchedSeries) {
  AsciiLineChart chart("t");
  EXPECT_THROW(chart.addSeries({"x", {1, 2}, {1}, '*'}),
               InvalidArgumentError);
  AsciiStackedBars bars("t", {"a", "b"});
  EXPECT_THROW(bars.addBar("r", {1.0}), InvalidArgumentError);
}

// --- expect macros ----------------------------------------------------------

TEST(ExpectTest, CheckThrowsWithMessage) {
  try {
    PGASEMB_CHECK(1 == 2, "one is not ", 2);
    FAIL() << "should have thrown";
  } catch (const InvalidArgumentError& e) {
    EXPECT_NE(std::string(e.what()).find("one is not 2"), std::string::npos);
  }
}

TEST(ExpectTest, AssertThrowsError) {
  EXPECT_THROW(PGASEMB_ASSERT(false), Error);
}

TEST(ExpectTest, ExpectFailureMessageShowsEvaluatedOperands) {
  try {
    const int used = 130;
    const int limit = 128;
    PGASEMB_EXPECT_LE(used, limit, "capacity check");
    FAIL() << "should have thrown";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("expect failed: used <= limit"), std::string::npos)
        << what;
    EXPECT_NE(what.find("with used = 130, limit = 128"), std::string::npos)
        << what;
    EXPECT_NE(what.find("capacity check"), std::string::npos) << what;
  }
}

TEST(ExpectTest, ComparisonMacrosCoverAllOperators) {
  PGASEMB_EXPECT_EQ(2 + 2, 4);
  PGASEMB_EXPECT_NE(1, 2);
  PGASEMB_EXPECT_LT(1, 2);
  PGASEMB_EXPECT_LE(2, 2);
  PGASEMB_EXPECT_GT(3, 2);
  PGASEMB_EXPECT_GE(2, 2);
  EXPECT_THROW(PGASEMB_EXPECT_EQ(1, 2), InvalidArgumentError);
  EXPECT_THROW(PGASEMB_EXPECT_NE(2, 2), InvalidArgumentError);
  EXPECT_THROW(PGASEMB_EXPECT_LT(2, 2), InvalidArgumentError);
  EXPECT_THROW(PGASEMB_EXPECT_LE(3, 2), InvalidArgumentError);
  EXPECT_THROW(PGASEMB_EXPECT_GT(2, 2), InvalidArgumentError);
  EXPECT_THROW(PGASEMB_EXPECT_GE(1, 2), InvalidArgumentError);
}

TEST(ExpectTest, ExpectOperandsAreEvaluatedExactlyOnce) {
  int calls = 0;
  const auto next = [&calls] { return ++calls; };
  PGASEMB_EXPECT_GE(next(), 1);
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(PGASEMB_EXPECT_GE(0, next()), InvalidArgumentError);
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace pgasemb

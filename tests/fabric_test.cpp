// Unit tests for the interconnect model: link serialization math, FIFO
// queueing, topology routing, byte conservation, and time-series
// counters.
#include <gtest/gtest.h>

#include <memory>

#include "fabric/fabric.hpp"
#include "fabric/link.hpp"
#include "fabric/time_series_counter.hpp"
#include "fabric/topology.hpp"
#include "sim/simulator.hpp"
#include "util/expect.hpp"

namespace pgasemb::fabric {
namespace {

LinkParams testLink() {
  LinkParams p;
  p.bandwidth_bytes_per_sec = 100e9;  // 100 GB/s => 10 ps per byte
  p.latency = SimTime::us(1);
  p.header_bytes = 32;
  return p;
}

// --- Link -----------------------------------------------------------------

TEST(LinkTest, SerializationIncludesHeaders) {
  Link link("l", testLink());
  // 1 message of 1000 bytes: (1000 + 32) / 100e9 s.
  const SimTime t1 = link.serializationTime(1000, 1);
  EXPECT_NEAR(t1.toSec(), 1032.0 / 100e9, 1e-15);
  // Same payload in 10 messages costs 9 more headers.
  const SimTime t10 = link.serializationTime(1000, 10);
  EXPECT_GT(t10, t1);
  EXPECT_NEAR(t10.toSec(), 1320.0 / 100e9, 1e-15);
}

TEST(LinkTest, MessageRateCeilingDominatesForTinyMessages) {
  LinkParams p = testLink();
  p.max_messages_per_sec = 1e6;  // 1 M msg/s
  Link link("l", p);
  // 1000 messages at 1 M msg/s = 1 ms, far above the byte time.
  const SimTime t = link.serializationTime(1000 * 256, 1000);
  EXPECT_NEAR(t.toMs(), 1.0, 1e-9);
}

TEST(LinkTest, OccupyQueuesFifo) {
  Link link("l", testLink());
  const auto g1 = link.occupy(SimTime::zero(), 100'000, 1);
  const auto g2 = link.occupy(SimTime::zero(), 100'000, 1);
  EXPECT_EQ(g2.start, g1.end);
  EXPECT_EQ(link.totalPayloadBytes(), 200'000);
  EXPECT_EQ(link.totalMessages(), 2);
}

TEST(LinkTest, NegativeFlowRejected) {
  Link link("l", testLink());
  EXPECT_THROW(link.serializationTime(-1, 0), InvalidArgumentError);
}

// --- Topologies --------------------------------------------------------------

TEST(TopologyTest, NvlinkAllToAllHasDedicatedPairLinks) {
  NvlinkAllToAllTopology topo(4, testLink());
  EXPECT_EQ(topo.numGpus(), 4);
  EXPECT_EQ(topo.links().size(), 12u);  // 4*3 directed pairs
  auto r01 = topo.route(0, 1);
  auto r10 = topo.route(1, 0);
  ASSERT_EQ(r01.size(), 1u);
  ASSERT_EQ(r10.size(), 1u);
  EXPECT_NE(r01[0], r10[0]);  // directions are independent
  EXPECT_TRUE(topo.route(2, 2).empty());
}

TEST(TopologyTest, MultiNodeRoutesThroughNics) {
  MultiNodeTopology topo(2, 2, testLink(), testLink());
  EXPECT_EQ(topo.numGpus(), 4);
  // Same node: one NVLink hop.
  EXPECT_EQ(topo.route(0, 1).size(), 1u);
  // Cross node: up NIC + down NIC.
  auto r = topo.route(0, 3);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_NE(r[0]->name().find("nic0.up"), std::string::npos);
  EXPECT_NE(r[1]->name().find("nic1.down"), std::string::npos);
}

TEST(TopologyTest, MultiNodeNicIsSharedAcrossGpus) {
  MultiNodeTopology topo(2, 2, testLink(), testLink());
  auto a = topo.route(0, 2);
  auto b = topo.route(1, 3);
  // Both cross-node routes from node 0 share nic0.up.
  EXPECT_EQ(a[0], b[0]);
}

// --- TimeSeriesCounter -------------------------------------------------------

TEST(CounterTest, BucketsAccumulate) {
  TimeSeriesCounter c(SimTime::us(10));
  c.add(SimTime::us(1), 5.0);
  c.add(SimTime::us(9), 5.0);
  c.add(SimTime::us(15), 2.0);
  EXPECT_DOUBLE_EQ(c.bucket(0), 10.0);
  EXPECT_DOUBLE_EQ(c.bucket(1), 2.0);
  EXPECT_DOUBLE_EQ(c.bucket(7), 0.0);
  EXPECT_DOUBLE_EQ(c.total(), 12.0);
}

TEST(CounterTest, CumulativePrefixSums) {
  TimeSeriesCounter c(SimTime::us(10));
  c.add(SimTime::us(5), 1.0);
  c.add(SimTime::us(25), 2.0);
  const auto cum = c.cumulative();
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_DOUBLE_EQ(cum[0], 1.0);
  EXPECT_DOUBLE_EQ(cum[1], 1.0);
  EXPECT_DOUBLE_EQ(cum[2], 3.0);
}

// --- Fabric -------------------------------------------------------------------

TEST(FabricTest, DeliveryAddsSerializationAndLatency) {
  sim::Simulator sim;
  Fabric fabric(sim, std::make_unique<NvlinkAllToAllTopology>(2, testLink()));
  const auto d = fabric.transfer(0, 1, 100'000, 1, SimTime::zero());
  const double ser_s = 100'032.0 / 100e9;
  EXPECT_NEAR(d.delivered.toSec(), ser_s + 1e-6, 1e-12);
}

TEST(FabricTest, LocalTransferIsFree) {
  sim::Simulator sim;
  Fabric fabric(sim, std::make_unique<NvlinkAllToAllTopology>(2, testLink()));
  const auto d = fabric.transfer(1, 1, 1'000'000, 100, SimTime::us(5));
  EXPECT_EQ(d.delivered, SimTime::us(5));
  EXPECT_EQ(fabric.totalPayloadBytes(), 0);
}

TEST(FabricTest, OnDeliveredFiresAsEvent) {
  sim::Simulator sim;
  Fabric fabric(sim, std::make_unique<NvlinkAllToAllTopology>(2, testLink()));
  SimTime seen = SimTime::zero();
  fabric.transfer(0, 1, 1000, 1, SimTime::zero(),
                  [&](SimTime t) { seen = t; });
  sim.run();
  EXPECT_GT(seen, SimTime::zero());
}

TEST(FabricTest, CountersConserveBytes) {
  sim::Simulator sim;
  Fabric fabric(sim, std::make_unique<NvlinkAllToAllTopology>(4, testLink()));
  std::int64_t sent = 0;
  for (int s = 0; s < 4; ++s) {
    for (int d = 0; d < 4; ++d) {
      if (s == d) continue;
      fabric.transfer(s, d, 1000 * (s + 1), 4, SimTime::zero());
      sent += 1000 * (s + 1);
    }
  }
  sim.run();
  EXPECT_EQ(fabric.totalPayloadBytes(), sent);
  EXPECT_DOUBLE_EQ(fabric.injectionCounter().total(),
                   static_cast<double>(sent));
  EXPECT_DOUBLE_EQ(fabric.deliveryCounter().total(),
                   static_cast<double>(sent));
}

TEST(FabricTest, DisjointPairsDoNotContend) {
  sim::Simulator sim;
  Fabric fabric(sim, std::make_unique<NvlinkAllToAllTopology>(4, testLink()));
  const auto d1 = fabric.transfer(0, 1, 1'000'000, 1, SimTime::zero());
  const auto d2 = fabric.transfer(2, 3, 1'000'000, 1, SimTime::zero());
  EXPECT_EQ(d1.delivered, d2.delivered);  // fully parallel
}

TEST(FabricTest, SamePairFlowsSerialize) {
  sim::Simulator sim;
  Fabric fabric(sim, std::make_unique<NvlinkAllToAllTopology>(2, testLink()));
  const auto d1 = fabric.transfer(0, 1, 1'000'000, 1, SimTime::zero());
  const auto d2 = fabric.transfer(0, 1, 1'000'000, 1, SimTime::zero());
  EXPECT_GT(d2.delivered, d1.delivered);
}

TEST(FabricTest, SharedNicCongests) {
  sim::Simulator sim;
  LinkParams slow = testLink();
  slow.bandwidth_bytes_per_sec = 10e9;
  Fabric fabric(sim, std::make_unique<MultiNodeTopology>(2, 2, testLink(),
                                                         slow));
  // Two different-source cross-node flows share nic0.up.
  const auto d1 = fabric.transfer(0, 2, 1'000'000, 1, SimTime::zero());
  const auto d2 = fabric.transfer(1, 3, 1'000'000, 1, SimTime::zero());
  EXPECT_GT(d2.delivered, d1.delivered);
}

TEST(FabricTest, ResetClearsCountersAndLinks) {
  sim::Simulator sim;
  Fabric fabric(sim, std::make_unique<NvlinkAllToAllTopology>(2, testLink()));
  fabric.transfer(0, 1, 1000, 1, SimTime::zero());
  fabric.reset();
  EXPECT_EQ(fabric.totalPayloadBytes(), 0);
  EXPECT_DOUBLE_EQ(fabric.injectionCounter().total(), 0.0);
  const auto d = fabric.transfer(0, 1, 1000, 1, SimTime::zero());
  EXPECT_NEAR(d.delivered.toSec(), 1032.0 / 100e9 + 1e-6, 1e-12);
}

}  // namespace
}  // namespace pgasemb::fabric

// Unit tests for the NCCL-like collective library: request semantics,
// stream ordering (comm starts only after prior kernels), timing shapes,
// and functional completion callbacks.
#include <gtest/gtest.h>

#include <memory>

#include "collective/communicator.hpp"
#include "fabric/fabric.hpp"
#include "gpu/system.hpp"
#include "util/expect.hpp"

namespace pgasemb::collective {
namespace {

struct Rig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  Communicator comm;

  explicit Rig(int gpus, fabric::LinkParams link = {})
      : system(makeConfig(gpus)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(gpus, link)),
        comm(system, fabric) {}

  static gpu::SystemConfig makeConfig(int gpus) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 1 << 30;
    cfg.mode = gpu::ExecutionMode::kTimingOnly;
    return cfg;
  }

  std::vector<std::vector<std::int64_t>> uniformMatrix(std::int64_t bytes) {
    const int n = system.numGpus();
    std::vector<std::vector<std::int64_t>> m(
        static_cast<std::size_t>(n),
        std::vector<std::int64_t>(static_cast<std::size_t>(n), bytes));
    for (int i = 0; i < n; ++i) {
      m[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] = 0;
    }
    return m;
  }
};

TEST(CollectiveTest, AllToAllCompletesAndMovesBytes) {
  Rig rig(4);
  auto req = rig.comm.allToAllSingle(rig.uniformMatrix(1 << 20));
  EXPECT_TRUE(req.valid());
  req.wait(rig.system);
  EXPECT_TRUE(req.completed());
  // 12 ordered pairs x 1 MiB.
  EXPECT_EQ(rig.fabric.totalPayloadBytes(), 12LL << 20);
}

TEST(CollectiveTest, WaitAdvancesHostPastCompletion) {
  Rig rig(2);
  auto req = rig.comm.allToAllSingle(rig.uniformMatrix(16 << 20));
  const SimTime host = req.wait(rig.system);
  EXPECT_GE(host, req.completionTime());
  EXPECT_EQ(host, rig.system.hostNow());
}

TEST(CollectiveTest, TriggerOverheadChargedPerDevice) {
  Rig rig(4);
  const SimTime before = rig.system.hostNow();
  rig.comm.allToAllSingle(rig.uniformMatrix(0));
  EXPECT_EQ(rig.system.hostNow() - before,
            rig.system.costModel().collective_trigger_overhead * 4);
}

TEST(CollectiveTest, CommWaitsForPriorKernelOnStream) {
  Rig rig(2);
  gpu::KernelDesc k;
  k.name = "compute";
  k.duration = SimTime::ms(5);
  rig.system.launchKernel(0, k);  // only GPU 0 is busy
  auto req = rig.comm.allToAllSingle(rig.uniformMatrix(1024));
  req.wait(rig.system);
  // GPU 1's side may start early, but the collective cannot retire
  // before GPU 0's kernel finished and its data went on the wire.
  EXPECT_GT(req.completionTime(), SimTime::ms(5));
}

TEST(CollectiveTest, LargerPayloadTakesLonger) {
  Rig a(2), b(2);
  auto ra = a.comm.allToAllSingle(a.uniformMatrix(1 << 20));
  ra.wait(a.system);
  auto rb = b.comm.allToAllSingle(b.uniformMatrix(64 << 20));
  rb.wait(b.system);
  EXPECT_GT(rb.completionTime() - rb.startTime(),
            ra.completionTime() - ra.startTime());
}

TEST(CollectiveTest, ChunkingAddsPerChunkOverhead) {
  Rig a(2), b(2);
  ChunkingParams coarse{64 << 20};
  ChunkingParams fine{1 << 20};
  auto ra = a.comm.allToAllSingle(a.uniformMatrix(32 << 20), nullptr, coarse);
  ra.wait(a.system);
  auto rb = b.comm.allToAllSingle(b.uniformMatrix(32 << 20), nullptr, fine);
  rb.wait(b.system);
  EXPECT_GT(rb.completionTime(), ra.completionTime());
}

TEST(CollectiveTest, OnCompleteRunsExactlyOnceAtWait) {
  Rig rig(2);
  int calls = 0;
  auto req = rig.comm.allToAllSingle(rig.uniformMatrix(1024),
                                     [&] { ++calls; });
  EXPECT_EQ(calls, 0);
  req.wait(rig.system);
  EXPECT_EQ(calls, 1);
  req.wait(rig.system);
  EXPECT_EQ(calls, 1);
}

TEST(CollectiveTest, ProtocolEfficiencySlowsCollectives) {
  Rig rig(2);
  // Compare against a raw PGAS-style transfer of the same volume.
  const std::int64_t bytes = 32 << 20;
  const auto raw = rig.fabric.transfer(0, 1, bytes, 1, rig.system.hostNow());
  auto req = rig.comm.allToAllSingle(rig.uniformMatrix(bytes));
  req.wait(rig.system);
  const SimTime collective_wire =
      req.completionTime() - req.startTime();
  EXPECT_GT(collective_wire, (raw.delivered - raw.injected) * 2);
}

TEST(CollectiveTest, AllGatherScalesWithRanks) {
  Rig r2(2), r4(4);
  auto a = r2.comm.allGather(8 << 20);
  a.wait(r2.system);
  auto b = r4.comm.allGather(8 << 20);
  b.wait(r4.system);
  // p-1 chained steps: 4 ranks take ~3x the 2-rank single step.
  EXPECT_GT(b.completionTime() - b.startTime(),
            (a.completionTime() - a.startTime()) * 2);
}

TEST(CollectiveTest, AllReduceTwiceReduceScatter) {
  Rig a(4), b(4);
  auto rs = a.comm.reduceScatter(64 << 20);
  rs.wait(a.system);
  auto ar = b.comm.allReduce(64 << 20);
  ar.wait(b.system);
  const double ratio = (ar.completionTime() - ar.startTime()) /
                       (rs.completionTime() - rs.startTime());
  EXPECT_NEAR(ratio, 2.0, 0.2);
}

TEST(CollectiveTest, BroadcastOnlyRootSends) {
  Rig rig(4);
  auto req = rig.comm.broadcast(1, 4 << 20, nullptr);
  req.wait(rig.system);
  EXPECT_EQ(rig.fabric.totalPayloadBytes(), 3LL * (4 << 20));
}

TEST(CollectiveTest, RingShiftRoundsChargePerRoundSync) {
  Rig a(4), b(4);
  auto one = a.comm.ringShiftRounds(1 << 20, 1);
  one.wait(a.system);
  auto three = b.comm.ringShiftRounds(1 << 20, 3);
  three.wait(b.system);
  const SimTime d1 = one.completionTime() - one.startTime();
  const SimTime d3 = three.completionTime() - three.startTime();
  // Three rounds of transfer + per-round sync (the host-side trigger
  // stagger is paid once in both cases, so d3 < 3*d1 but well above 2x).
  EXPECT_GT(d3, d1 * 2);
  EXPECT_LT(d3, d1 * 3);
}

TEST(CollectiveTest, BadMatrixShapeThrows) {
  Rig rig(3);
  std::vector<std::vector<std::int64_t>> wrong(2);
  EXPECT_THROW(rig.comm.allToAllSingle(wrong), InvalidArgumentError);
}

TEST(CollectiveTest, EmptyRequestThrows) {
  Request req;
  EXPECT_FALSE(req.valid());
  EXPECT_THROW(req.completed(), InvalidArgumentError);
}

TEST(CollectiveTest, ZeroByteCollectiveStillSynchronizes) {
  Rig rig(4);
  auto req = rig.comm.allToAllSingle(rig.uniformMatrix(0));
  req.wait(rig.system);
  EXPECT_TRUE(req.completed());
  EXPECT_EQ(rig.fabric.totalPayloadBytes(), 0);
}

}  // namespace
}  // namespace pgasemb::collective

// Unit tests for the simulated GPU runtime: device memory accounting,
// cost model shapes, stream FIFO semantics, kernel slicing, events, and
// host-clock bookkeeping.
#include <gtest/gtest.h>

#include <vector>

#include "gpu/cost_model.hpp"
#include "gpu/device.hpp"
#include "gpu/gpu_event.hpp"
#include "gpu/kernel.hpp"
#include "gpu/stream.hpp"
#include "gpu/system.hpp"
#include "util/expect.hpp"

namespace pgasemb::gpu {
namespace {

SystemConfig smallConfig(ExecutionMode mode, int gpus = 2) {
  SystemConfig cfg;
  cfg.num_gpus = gpus;
  cfg.memory_capacity_bytes = 64 * 1024 * 1024;
  cfg.mode = mode;
  return cfg;
}

// --- Device memory -----------------------------------------------------------

TEST(DeviceTest, AllocChargesCapacity) {
  Device dev(0, 1024 * 4, ExecutionMode::kFunctional);
  auto buf = dev.alloc(512);
  EXPECT_EQ(dev.memoryUsedBytes(), 512 * 4);
  EXPECT_EQ(dev.memoryFreeBytes(), 512 * 4);
  EXPECT_TRUE(buf.backed());
  EXPECT_EQ(buf.size(), 512);
}

TEST(DeviceTest, OomThrows) {
  Device dev(0, 1024 * 4, ExecutionMode::kFunctional);
  dev.alloc(1000);
  EXPECT_THROW(dev.alloc(100), OutOfMemoryError);
}

TEST(DeviceTest, VirtualAllocHasNoBackingButChargesCapacity) {
  Device dev(0, 1LL << 40, ExecutionMode::kFunctional);
  // 16 GB of virtual table space must not allocate host memory.
  auto buf = dev.allocVirtual(4LL * 1024 * 1024 * 1024);
  EXPECT_FALSE(buf.backed());
  EXPECT_EQ(dev.memoryUsedBytes(), 16LL * 1024 * 1024 * 1024);
  EXPECT_THROW(buf.span(), InvalidArgumentError);
}

TEST(DeviceTest, TimingOnlyBuffersAreUnbacked) {
  Device dev(0, 1024 * 4, ExecutionMode::kTimingOnly);
  auto buf = dev.alloc(16);
  EXPECT_FALSE(buf.backed());
  EXPECT_THROW(buf.span(), InvalidArgumentError);
}

TEST(DeviceTest, FunctionalBufferIsZeroInitializedAndWritable) {
  Device dev(0, 1024 * 4, ExecutionMode::kFunctional);
  auto buf = dev.alloc(8);
  for (float v : buf.span()) EXPECT_EQ(v, 0.0f);
  buf.span()[3] = 42.0f;
  EXPECT_EQ(buf.span()[3], 42.0f);
}

TEST(DeviceTest, FreeUncharges) {
  Device dev(0, 1024 * 4, ExecutionMode::kFunctional);
  auto buf = dev.alloc(512);
  dev.free(buf);
  EXPECT_EQ(dev.memoryUsedBytes(), 0);
  EXPECT_FALSE(buf.valid());
  // Space is reusable.
  auto buf2 = dev.alloc(1000);
  EXPECT_EQ(buf2.size(), 1000);
}

// --- Cost model -----------------------------------------------------------------

TEST(CostModelTest, GatherKernelIsMemoryBoundForEmbeddings) {
  CostModel cm;
  // Embedding lookups: ~1 flop per 4 bytes — memory-bound by far.
  const double bytes = 1e9;
  const double flops = bytes / 4.0;
  const double rows = 1e9;  // far above saturation
  const SimTime t = cm.gatherKernelTime(flops, bytes, rows);
  const double expect_s = bytes / (cm.hbm_bandwidth * cm.gather_efficiency);
  EXPECT_NEAR(t.toSec(), expect_s, expect_s * 1e-6);
}

TEST(CostModelTest, TinyKernelHitsLatencyFloor) {
  CostModel cm;
  EXPECT_EQ(cm.gatherKernelTime(10.0, 100.0, 1.0),
            cm.kernel_latency_floor);
  EXPECT_EQ(cm.streamKernelTime(16.0), cm.kernel_latency_floor);
}

TEST(CostModelTest, StreamKernelFasterThanGather) {
  CostModel cm;
  const double bytes = 4e9;
  EXPECT_LT(cm.streamKernelTime(bytes),
            cm.gatherKernelTime(0.0, bytes, 1e9));
}

TEST(CostModelTest, ThroughputFractionsMatchNcuStyleReport) {
  CostModel cm;
  const double bytes = 1e9;
  const SimTime t = cm.gatherKernelTime(bytes / 4.0, bytes, 1e9);
  const auto tp = cm.kernelThroughput(bytes / 4.0, bytes, t);
  // Memory fraction equals the gather efficiency; compute is tiny.
  EXPECT_NEAR(tp.memory, cm.gather_efficiency, 1e-6);
  EXPECT_LT(tp.compute, 0.01);
}

// --- Streams and kernels --------------------------------------------------------

TEST(StreamTest, OpsRunInFifoOrder) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly));
  std::vector<int> order;
  auto& s = sys.stream(0);
  s.enqueueFixed(SimTime::zero(), "a", SimTime::us(5), [&] {
    order.push_back(1);
  });
  s.enqueueFixed(SimTime::zero(), "b", SimTime::us(1), [&] {
    order.push_back(2);
  });
  sys.drain();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.lastCompletion(), SimTime::us(6));
}

TEST(StreamTest, ReadyTimeDelaysStart) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly));
  auto& s = sys.stream(0);
  s.enqueueFixed(SimTime::us(100), "late", SimTime::us(5));
  sys.drain();
  EXPECT_EQ(s.lastCompletion(), SimTime::us(105));
}

TEST(StreamTest, KernelOccupiesComputeResource) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly));
  KernelDesc k;
  k.name = "k";
  k.duration = SimTime::us(50);
  sys.stream(0).enqueueKernel(SimTime::zero(), k);
  sys.drain();
  EXPECT_EQ(sys.device(0).computeResource().busyTime(), SimTime::us(50));
}

TEST(StreamTest, KernelSlicesFireOnSchedule) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly));
  std::vector<double> slice_times;
  KernelDesc k;
  k.name = "sliced";
  k.duration = SimTime::us(40);
  k.slices = 4;
  k.on_slice = [&](int slice, SimTime at) {
    EXPECT_EQ(slice, static_cast<int>(slice_times.size()));
    slice_times.push_back(at.toUs());
  };
  sys.stream(0).enqueueKernel(SimTime::zero(), k);
  sys.drain();
  ASSERT_EQ(slice_times.size(), 4u);
  EXPECT_DOUBLE_EQ(slice_times[0], 10.0);
  EXPECT_DOUBLE_EQ(slice_times[3], 40.0);
}

TEST(StreamTest, FinalizeExtendsCompletion) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly));
  KernelDesc k;
  k.name = "quiet";
  k.duration = SimTime::us(10);
  k.finalize = [](SimTime end) { return end + SimTime::us(7); };
  auto& s = sys.stream(0);
  s.enqueueKernel(SimTime::zero(), k);
  sys.drain();
  EXPECT_EQ(s.lastCompletion(), SimTime::us(17));
}

TEST(StreamTest, FunctionalBodyRunsOnce) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kFunctional));
  int runs = 0;
  KernelDesc k;
  k.name = "body";
  k.duration = SimTime::us(1);
  k.functional_body = [&] { ++runs; };
  sys.stream(0).enqueueKernel(SimTime::zero(), k);
  sys.drain();
  EXPECT_EQ(runs, 1);
}

TEST(StreamTest, TwoStreamsOnOneDeviceSerializeOnCompute) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly, 1));
  auto& s2 = sys.createStream(0, "side");
  KernelDesc k;
  k.duration = SimTime::us(30);
  k.name = "a";
  sys.stream(0).enqueueKernel(SimTime::zero(), k);
  k.name = "b";
  s2.enqueueKernel(SimTime::zero(), k);
  sys.drain();
  // Second kernel had to wait for the device compute resource.
  EXPECT_EQ(std::max(sys.stream(0).lastCompletion(), s2.lastCompletion()),
            SimTime::us(60));
}

// --- Events -------------------------------------------------------------------

TEST(GpuEventTest, CrossStreamDependency) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly));
  GpuEvent ev;
  auto& s0 = sys.stream(0);
  auto& s1 = sys.stream(1);
  s0.enqueueFixed(SimTime::zero(), "produce", SimTime::us(25));
  s0.enqueueRecord(SimTime::zero(), ev);
  s1.enqueueWaitEvent(SimTime::zero(), ev);
  s1.enqueueFixed(SimTime::zero(), "consume", SimTime::us(5));
  sys.drain();
  EXPECT_EQ(s1.lastCompletion(), SimTime::us(30));
}

TEST(GpuEventTest, WaitOnRecordedEventIsInstant) {
  GpuEvent ev;
  ev.record(SimTime::us(3));
  SimTime seen;
  ev.onRecorded([&](SimTime t) { seen = t; });
  EXPECT_EQ(seen, SimTime::us(3));
  EXPECT_EQ(ev.time(), SimTime::us(3));
}

TEST(GpuEventTest, ResetAllowsReuse) {
  GpuEvent ev;
  ev.record(SimTime::us(3));
  ev.reset();
  EXPECT_FALSE(ev.recorded());
  ev.record(SimTime::us(9));
  EXPECT_EQ(ev.time(), SimTime::us(9));
}

// --- Host clock --------------------------------------------------------------

TEST(SystemTest, LaunchChargesHostOverhead) {
  auto cfg = smallConfig(ExecutionMode::kTimingOnly);
  MultiGpuSystem sys(cfg);
  KernelDesc k;
  k.name = "k";
  k.duration = SimTime::us(100);
  sys.launchKernel(0, k);
  EXPECT_EQ(sys.hostNow(), cfg.cost_model.kernel_launch_overhead);
  sys.launchKernel(1, k);
  EXPECT_EQ(sys.hostNow(), cfg.cost_model.kernel_launch_overhead * 2);
}

TEST(SystemTest, SyncAllWaitsForAllStreamsAndChargesPerDevice) {
  auto cfg = smallConfig(ExecutionMode::kTimingOnly);
  MultiGpuSystem sys(cfg);
  KernelDesc k;
  k.name = "k";
  k.duration = SimTime::us(100);
  sys.launchKernel(0, k);
  sys.launchKernel(1, k);
  const SimTime t = sys.syncAll();
  // Kernel 0 starts after one launch overhead; kernel 1 after two; both
  // run 100us concurrently on different devices.
  const SimTime k1_end = cfg.cost_model.kernel_launch_overhead * 2 +
                         SimTime::us(100);
  EXPECT_EQ(t, k1_end + cfg.cost_model.stream_sync_overhead * 2);
}

TEST(SystemTest, KernelsOnDifferentDevicesRunConcurrently) {
  auto cfg = smallConfig(ExecutionMode::kTimingOnly, 4);
  cfg.cost_model.kernel_launch_overhead = SimTime::zero();
  cfg.cost_model.stream_sync_overhead = SimTime::zero();
  MultiGpuSystem sys(cfg);
  KernelDesc k;
  k.name = "k";
  k.duration = SimTime::ms(1);
  for (int g = 0; g < 4; ++g) sys.launchKernel(g, k);
  EXPECT_EQ(sys.syncAll(), SimTime::ms(1));
}

TEST(SystemTest, BadDeviceIdThrows) {
  MultiGpuSystem sys(smallConfig(ExecutionMode::kTimingOnly));
  EXPECT_THROW(sys.device(7), InvalidArgumentError);
  EXPECT_THROW(sys.stream(-1), InvalidArgumentError);
}

// --- Device free list --------------------------------------------------------

TEST(DeviceFreeListTest, FreedRangeIsReusedFirstFit) {
  Device dev(0, 1 << 20, ExecutionMode::kTimingOnly);
  auto a = dev.alloc(100);
  auto b = dev.alloc(100);
  EXPECT_EQ(dev.addressSpaceEnd(), 200);
  dev.free(a);
  EXPECT_FALSE(a.valid());
  auto c = dev.alloc(60);  // carved from the front of the hole at 0
  EXPECT_EQ(c.offset(), 0);
  auto d = dev.alloc(40);  // remainder of the same hole
  EXPECT_EQ(d.offset(), 60);
  EXPECT_EQ(dev.addressSpaceEnd(), 200);
  dev.free(b);
  dev.free(c);
  dev.free(d);
  EXPECT_EQ(dev.addressSpaceEnd(), 0);
}

TEST(DeviceFreeListTest, FreeingTheTailShrinksAddressSpace) {
  Device dev(0, 1 << 20, ExecutionMode::kTimingOnly);
  auto a = dev.alloc(100);
  auto b = dev.alloc(50);
  EXPECT_EQ(dev.addressSpaceEnd(), 150);
  dev.free(b);
  EXPECT_EQ(dev.addressSpaceEnd(), 100);
  dev.free(a);
  EXPECT_EQ(dev.addressSpaceEnd(), 0);
}

TEST(DeviceFreeListTest, OutOfOrderFreesCoalesceAndReclaim) {
  // The old allocator only ever reclaimed the most recent allocation;
  // interior frees were lost. Coalescing recovers them once the tail
  // block is freed too.
  Device dev(0, 1 << 20, ExecutionMode::kTimingOnly);
  auto a = dev.alloc(100);
  auto b = dev.alloc(100);
  auto c = dev.alloc(100);
  dev.free(b);  // interior hole — nothing shrinks yet
  EXPECT_EQ(dev.addressSpaceEnd(), 300);
  dev.free(c);  // coalesces with b's hole and the tail retreats past both
  EXPECT_EQ(dev.addressSpaceEnd(), 100);
  dev.free(a);
  EXPECT_EQ(dev.addressSpaceEnd(), 0);
}

TEST(DeviceFreeListTest, SteadyStateAllocFreeDoesNotGrowAddressSpace) {
  Device dev(0, 1 << 20, ExecutionMode::kTimingOnly);
  auto hold = dev.alloc(64);
  auto cursor = dev.alloc(256);
  const std::int64_t high = dev.addressSpaceEnd();
  for (int i = 0; i < 100; ++i) {
    dev.free(cursor);
    cursor = dev.alloc(256);
    EXPECT_EQ(cursor.offset(), 64);
    EXPECT_EQ(dev.addressSpaceEnd(), high);
  }
  dev.free(cursor);
  dev.free(hold);
  EXPECT_EQ(dev.addressSpaceEnd(), 0);
  EXPECT_EQ(dev.memoryUsedBytes(), 0);
}

TEST(DeviceFreeListTest, ReusedFunctionalStorageComesUpZeroed) {
  Device dev(0, 1 << 20, ExecutionMode::kFunctional);
  auto hold = dev.alloc(16);
  auto a = dev.alloc(16);
  auto tail = dev.alloc(16);  // keeps a's hole interior (reuse, not shrink)
  for (auto& v : a.span()) v = 7.0f;
  dev.free(a);
  auto b = dev.alloc(16);
  EXPECT_EQ(b.offset(), 16);
  for (const float v : b.span()) EXPECT_EQ(v, 0.0f);
  dev.free(tail);
  dev.free(b);
  dev.free(hold);
}

TEST(DeviceFreeListTest, FreeingInvalidBufferThrows) {
  Device dev(0, 1 << 20, ExecutionMode::kTimingOnly);
  DeviceBuffer stale;
  EXPECT_THROW(dev.free(stale), InvalidArgumentError);
  auto a = dev.alloc(8);
  dev.free(a);  // invalidates a
  EXPECT_THROW(dev.free(a), InvalidArgumentError);
}

}  // namespace
}  // namespace pgasemb::gpu

// Tests for deterministic fault injection and the resilience machinery:
//
//  * PLAN GRAMMAR: --faults specs parse (and malformed ones fail with
//    pointed messages).
//  * DETERMINISM: the same --fault-seed materializes the same fault
//    schedule and reproduces the run byte-for-byte; a different seed
//    yields a different schedule.
//  * ZERO-COST OFF: an empty plan builds no injector; an armed window
//    that never overlaps the run leaves every timing bit-identical.
//  * RESILIENCE: flap-dropped puts are retransmitted and dropped
//    collective chunks reissued, functional outputs stay bit-exact under
//    mid-run faults, stragglers/launch failures slow the run but never
//    break it, and the SLO degradation policy swaps the retriever.
//  * SIMSAN CERTIFICATION: the recovery paths are race-free at 2/4/8
//    GPUs for every retriever, and a seeded "retransmit without
//    re-arming quiet" bug is caught by name.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/fallback.hpp"
#include "core/pgas_retriever.hpp"
#include "engine/scenario_runner.hpp"
#include "fabric/fabric.hpp"
#include "fault/injector.hpp"
#include "fault/plan.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb {
namespace {

using fault::FaultKind;
using fault::FaultPlan;
using fault::FaultSpec;

// --- Plan grammar ------------------------------------------------------------

TEST(FaultPlanTest, ParsesTheQuickStartSpec) {
  const auto plan = FaultPlan::parse("link-degrade:0-1:0.5", 7);
  ASSERT_EQ(plan.specs.size(), 1u);
  const FaultSpec& s = plan.specs[0];
  EXPECT_EQ(s.kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(s.a, 0);
  EXPECT_EQ(s.b, 1);
  EXPECT_DOUBLE_EQ(s.magnitude, 0.5);
  EXPECT_FALSE(s.windowed());  // window drawn from the seed at arm time
  EXPECT_EQ(plan.seed, 7u);
}

TEST(FaultPlanTest, ParsesEveryKindWildcardsAndWindows) {
  const auto plan = FaultPlan::parse(
      "link-degrade:*:0.5,latency-spike:0-1:5:0.5-1.0,link-flap:1-0:1.0-2.0,"
      "straggler:2:3:1.0-2.5,launch-fail:*:0.25",
      42);
  ASSERT_EQ(plan.specs.size(), 5u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kLinkDegrade);
  EXPECT_EQ(plan.specs[0].a, -1);  // wildcard
  EXPECT_EQ(plan.specs[0].b, -1);
  EXPECT_EQ(plan.specs[1].extra_latency, SimTime::us(5.0));
  EXPECT_TRUE(plan.specs[1].windowed());
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kLinkFlap);
  EXPECT_EQ(plan.specs[2].start, SimTime::ms(1.0));
  EXPECT_EQ(plan.specs[2].end, SimTime::ms(2.0));
  EXPECT_EQ(plan.specs[3].kind, FaultKind::kStraggler);
  EXPECT_EQ(plan.specs[3].a, 2);
  EXPECT_DOUBLE_EQ(plan.specs[3].magnitude, 3.0);
  EXPECT_EQ(plan.specs[4].kind, FaultKind::kLaunchFail);
  EXPECT_EQ(plan.specs[4].a, -1);
}

TEST(FaultPlanTest, MalformedSpecsFailWithPointedMessages) {
  // Unknown kind names the known ones.
  try {
    FaultPlan::parse("link-melt:0-1:0.5", 0);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("link-melt"), std::string::npos);
    EXPECT_NE(what.find("link-degrade"), std::string::npos);
  }
  // Out-of-range magnitudes.
  EXPECT_THROW(FaultPlan::parse("link-degrade:0-1:0", 0),
               InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("link-degrade:0-1:1.5", 0),
               InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("straggler:0:0.5", 0), InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("launch-fail:0:1.0", 0),
               InvalidArgumentError);
  // Junk numbers (strict parsing: no silent prefixes).
  EXPECT_THROW(FaultPlan::parse("link-degrade:0-1:0.5x", 0),
               InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("straggler:two:3", 0), InvalidArgumentError);
  // Inverted / degenerate windows.
  EXPECT_THROW(FaultPlan::parse("link-flap:0-1:2.0-1.0", 0),
               InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("straggler:0:3:1.0-1.0", 0),
               InvalidArgumentError);
  // Missing fields.
  EXPECT_THROW(FaultPlan::parse("link-degrade:0-1", 0),
               InvalidArgumentError);
}

TEST(FaultPlanTest, DescribeMentionsSeededWindows) {
  const auto plan = FaultPlan::parse("link-degrade:0-1:0.5", 7);
  EXPECT_NE(plan.describe().find("seeded window"), std::string::npos);
  EXPECT_NE(plan.describe().find("seed 7"), std::string::npos);
}

TEST(FaultPlanTest, ParsesNodeScopedKindsWildcardsAndWindows) {
  const auto plan = FaultPlan::parse(
      "nic-degrade:0:0.5,nic-flap:*:1.0-2.0,leader-fail:1,"
      "node-straggle:2:3:0.5-4.5",
      11);
  ASSERT_EQ(plan.specs.size(), 4u);
  EXPECT_EQ(plan.specs[0].kind, FaultKind::kNicDegrade);
  EXPECT_EQ(plan.specs[0].a, 0);
  EXPECT_DOUBLE_EQ(plan.specs[0].magnitude, 0.5);
  EXPECT_FALSE(plan.specs[0].windowed());
  EXPECT_EQ(plan.specs[1].kind, FaultKind::kNicFlap);
  EXPECT_EQ(plan.specs[1].a, -1);  // wildcard node
  EXPECT_EQ(plan.specs[1].start, SimTime::ms(1.0));
  EXPECT_EQ(plan.specs[1].end, SimTime::ms(2.0));
  EXPECT_EQ(plan.specs[2].kind, FaultKind::kLeaderFail);
  EXPECT_EQ(plan.specs[2].a, 1);
  EXPECT_EQ(plan.specs[3].kind, FaultKind::kNodeStraggle);
  EXPECT_EQ(plan.specs[3].a, 2);
  EXPECT_DOUBLE_EQ(plan.specs[3].magnitude, 3.0);
  EXPECT_TRUE(plan.specs[3].windowed());
  // Only the four node-scoped kinds report as such.
  for (const auto& s : plan.specs) EXPECT_TRUE(fault::nodeScoped(s.kind));
  EXPECT_FALSE(fault::nodeScoped(FaultKind::kLinkDegrade));
  EXPECT_FALSE(fault::nodeScoped(FaultKind::kStraggler));
}

TEST(FaultPlanTest, MalformedNodeScopedSpecsFail) {
  // Out-of-range factors/slowdowns.
  EXPECT_THROW(FaultPlan::parse("nic-degrade:0:0", 0), InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("nic-degrade:0:1.5", 0),
               InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("node-straggle:0:0.5", 0),
               InvalidArgumentError);
  // Missing / extra fields.
  EXPECT_THROW(FaultPlan::parse("nic-degrade:0", 0), InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("leader-fail", 0), InvalidArgumentError);
  EXPECT_THROW(FaultPlan::parse("nic-flap:0:1.0-2.0:extra", 0),
               InvalidArgumentError);
  // Junk node ids parse strictly.
  EXPECT_THROW(FaultPlan::parse("leader-fail:one", 0), InvalidArgumentError);
  // The unknown-kind message names the node-scoped kinds too.
  try {
    FaultPlan::parse("nic-melt:0:0.5", 0);
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("nic-degrade"), std::string::npos);
    EXPECT_NE(what.find("leader-fail"), std::string::npos);
    EXPECT_NE(what.find("node-straggle"), std::string::npos);
  }
}

// --- Determinism -------------------------------------------------------------

// Small assembly for injector-level tests (mirrors core_test's Rig).
struct Rig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  pgas::PgasRuntime runtime;

  explicit Rig(int gpus,
               gpu::ExecutionMode mode = gpu::ExecutionMode::kTimingOnly)
      : system(makeConfig(gpus, mode)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric),
        runtime(system, fabric) {}

  static gpu::SystemConfig makeConfig(int gpus, gpu::ExecutionMode mode) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 1 << 30;
    cfg.mode = mode;
    return cfg;
  }

  /// Wires `injector` into every resilient path of this assembly.
  void attach(fault::FaultInjector& injector) {
    injector.arm(system, fabric);
    runtime.setFaultInjector(&injector);
    comm.setFaultInjector(&injector);
  }
};

TEST(FaultDeterminismTest, SameSeedMaterializesTheSameSchedule) {
  const auto plan =
      FaultPlan::parse("link-degrade:0-1:0.5,link-flap:*,straggler:0:2", 7);
  Rig rig_a(2), rig_b(2);
  fault::FaultInjector inj_a(plan), inj_b(plan);
  inj_a.arm(rig_a.system, rig_a.fabric);
  inj_b.arm(rig_b.system, rig_b.fabric);
  ASSERT_EQ(inj_a.materialized().size(), 3u);
  ASSERT_EQ(inj_a.materialized().size(), inj_b.materialized().size());
  for (std::size_t i = 0; i < inj_a.materialized().size(); ++i) {
    const FaultSpec& a = inj_a.materialized()[i];
    const FaultSpec& b = inj_b.materialized()[i];
    EXPECT_EQ(a.start, b.start) << "spec " << i;
    EXPECT_EQ(a.end, b.end) << "spec " << i;
    EXPECT_TRUE(a.windowed()) << "spec " << i;  // the draw resolved it
  }
}

TEST(FaultDeterminismTest, DifferentSeedMaterializesADifferentSchedule) {
  Rig rig_a(2), rig_b(2);
  fault::FaultInjector inj_a(FaultPlan::parse("link-flap:*", 7));
  fault::FaultInjector inj_b(FaultPlan::parse("link-flap:*", 8));
  inj_a.arm(rig_a.system, rig_a.fabric);
  inj_b.arm(rig_b.system, rig_b.fabric);
  EXPECT_NE(inj_a.materialized()[0].start, inj_b.materialized()[0].start);
}

engine::ExperimentConfig quickWeak(int gpus, int batches) {
  auto cfg = engine::weakScalingConfig(gpus);
  cfg.num_batches = batches;
  return cfg;
}

TEST(FaultDeterminismTest, SameSeedReproducesTheRunByteForByte) {
  auto cfg = quickWeak(2, 3);
  cfg.faults = FaultPlan::parse("link-degrade:*:0.5,straggler:0:2", 7,
                                SimTime::ms(200.0));
  const auto a = engine::ScenarioRunner(cfg).run("pgas_fused");
  const auto b = engine::ScenarioRunner(cfg).run("pgas_fused");
  EXPECT_EQ(a.stats.total, b.stats.total);
  ASSERT_EQ(a.per_batch.size(), b.per_batch.size());
  for (std::size_t i = 0; i < a.per_batch.size(); ++i) {
    EXPECT_EQ(a.per_batch[i].total, b.per_batch[i].total) << "batch " << i;
  }
  EXPECT_EQ(a.wire_bytes_over_time, b.wire_bytes_over_time);
  ASSERT_TRUE(a.resilience && b.resilience);
  EXPECT_EQ(a.resilience->dropped_flows, b.resilience->dropped_flows);
  EXPECT_EQ(a.resilience->retransmits, b.resilience->retransmits);
  EXPECT_EQ(a.resilience->retransmitted_bytes,
            b.resilience->retransmitted_bytes);
  EXPECT_EQ(a.resilience->recovery_latency, b.resilience->recovery_latency);
}

// --- Zero-cost off -----------------------------------------------------------

TEST(FaultZeroCostTest, EmptyPlanBuildsNoInjectorAndNoResilience) {
  const auto result =
      engine::ScenarioRunner(quickWeak(2, 2)).run("nccl_collective");
  EXPECT_FALSE(result.resilience.has_value());
}

TEST(FaultZeroCostTest, NonOverlappingWindowLeavesTimingBitIdentical) {
  // The resilient code paths are active (an injector is armed), but the
  // window never overlaps the run: every delivery, phase, and wire
  // bucket must match the fault-free run exactly.
  const auto cfg_clean = quickWeak(2, 2);
  auto cfg_armed = cfg_clean;
  cfg_armed.faults =
      FaultPlan::parse("link-degrade:*:0.3:100000-200000,"
                       "link-flap:*:100000-200000",
                       0);
  for (const char* name : {"nccl_collective", "pgas_fused"}) {
    const auto clean = engine::ScenarioRunner(cfg_clean).run(name);
    const auto armed = engine::ScenarioRunner(cfg_armed).run(name);
    EXPECT_EQ(clean.stats.total, armed.stats.total) << name;
    EXPECT_EQ(clean.stats.compute_phase, armed.stats.compute_phase) << name;
    EXPECT_EQ(clean.stats.comm_phase, armed.stats.comm_phase) << name;
    EXPECT_EQ(clean.wire_bytes_over_time, armed.wire_bytes_over_time)
        << name;
    EXPECT_EQ(clean.total_wire_bytes, armed.total_wire_bytes) << name;
    // The armed (but untriggered) plan still reports itself.
    EXPECT_FALSE(clean.resilience.has_value()) << name;
    ASSERT_TRUE(armed.resilience.has_value()) << name;
    EXPECT_EQ(armed.resilience->dropped_flows, 0) << name;
    EXPECT_EQ(armed.resilience->retransmits, 0) << name;
  }
}

// --- Fault effects on timing -------------------------------------------------

/// Whole-run window: wide enough to cover any test run.
FaultSpec wholeRun(FaultKind kind, int dev, double magnitude) {
  FaultSpec spec;
  spec.kind = kind;
  spec.a = dev;
  spec.magnitude = magnitude;
  spec.start = SimTime::zero();
  spec.end = SimTime::ms(10000.0);
  return spec;
}

TEST(FaultEffectTest, LinkDegradationSlowsTheCollectiveBaseline) {
  const auto cfg_clean = quickWeak(2, 2);
  auto cfg_degraded = cfg_clean;
  cfg_degraded.faults.specs.push_back(
      wholeRun(FaultKind::kLinkDegrade, -1, 0.3));
  cfg_degraded.faults.specs.back().b = -1;
  const auto clean = engine::ScenarioRunner(cfg_clean).run("nccl_collective");
  const auto degraded =
      engine::ScenarioRunner(cfg_degraded).run("nccl_collective");
  EXPECT_GT(degraded.stats.comm_phase, clean.stats.comm_phase);
  EXPECT_GT(degraded.stats.total, clean.stats.total);
  // Degradation stretches deliveries but drops nothing.
  ASSERT_TRUE(degraded.resilience.has_value());
  EXPECT_EQ(degraded.resilience->dropped_flows, 0);
}

TEST(FaultEffectTest, StragglerSlowsTheRun) {
  const auto cfg_clean = quickWeak(2, 2);
  auto cfg_slow = cfg_clean;
  cfg_slow.faults.specs.push_back(wholeRun(FaultKind::kStraggler, 0, 3.0));
  const auto clean = engine::ScenarioRunner(cfg_clean).run("pgas_fused");
  const auto slow = engine::ScenarioRunner(cfg_slow).run("pgas_fused");
  EXPECT_GT(slow.stats.total, clean.stats.total);
}

TEST(FaultEffectTest, DeviceSpecBeyondSystemSizeIsBenign) {
  // A scaling sweep re-arms the same plan at 1..N GPUs; a straggler (or
  // launch-fail) pinned to a device absent at the small points must
  // match nothing, not abort the sweep.
  const auto cfg_clean = quickWeak(2, 2);
  auto cfg_absent = cfg_clean;
  cfg_absent.faults.specs.push_back(wholeRun(FaultKind::kStraggler, 7, 3.0));
  cfg_absent.faults.specs.push_back(wholeRun(FaultKind::kLaunchFail, 7, 0.9));
  const auto clean = engine::ScenarioRunner(cfg_clean).run("pgas_fused");
  const auto absent = engine::ScenarioRunner(cfg_absent).run("pgas_fused");
  EXPECT_EQ(absent.stats.total, clean.stats.total);
  ASSERT_TRUE(absent.resilience.has_value());
  EXPECT_EQ(absent.resilience->launch_retries, 0);
}

TEST(FaultEffectTest, LaunchFailuresAreRetriedAndCharged) {
  const auto cfg_clean = quickWeak(2, 2);
  auto cfg_flaky = cfg_clean;
  cfg_flaky.faults.specs.push_back(wholeRun(FaultKind::kLaunchFail, 0, 0.9));
  const auto clean = engine::ScenarioRunner(cfg_clean).run("nccl_collective");
  const auto flaky =
      engine::ScenarioRunner(cfg_flaky).run("nccl_collective");
  ASSERT_TRUE(flaky.resilience.has_value());
  EXPECT_GT(flaky.resilience->launch_retries, 0);
  EXPECT_GT(flaky.stats.total, clean.stats.total);
  EXPECT_EQ(flaky.stats.batches, clean.stats.batches);  // still completes
}

// --- Flap recovery -----------------------------------------------------------

/// Places a link flap inside batch `b` of a clean run: for the fused
/// strategy puts fly throughout the compute phase, for the baseline the
/// chunks burst in the comm phase. Width is capped at 8 ms so every
/// dropped flow recovers within the default retry budget (~27 ms).
FaultSpec flapInsideBatch(const engine::ExperimentResult& clean, int b,
                          bool in_comm_phase) {
  SimTime batch_start = SimTime::zero();
  for (int i = 0; i < b; ++i) batch_start += clean.per_batch[i].total;
  const auto& t = clean.per_batch[static_cast<std::size_t>(b)];
  const SimTime phase_start =
      in_comm_phase ? batch_start + t.compute_phase : batch_start;
  const SimTime phase =
      in_comm_phase ? t.comm_phase : t.compute_phase;
  FaultSpec spec;
  spec.kind = FaultKind::kLinkFlap;
  spec.start = phase_start + phase * 0.25;
  spec.end = spec.start + std::min(SimTime::ms(8.0), phase * 0.5);
  return spec;
}

TEST(FlapRecoveryTest, DroppedPutsAreRetransmittedUntilDelivered) {
  const auto cfg_clean = quickWeak(2, 3);
  const auto clean = engine::ScenarioRunner(cfg_clean).run("pgas_fused");
  auto cfg_flap = cfg_clean;
  cfg_flap.faults.specs.push_back(
      flapInsideBatch(clean, 1, /*in_comm_phase=*/false));
  const auto flapped = engine::ScenarioRunner(cfg_flap).run("pgas_fused");
  ASSERT_TRUE(flapped.resilience.has_value());
  const auto& rs = *flapped.resilience;
  EXPECT_GT(rs.dropped_flows, 0);
  EXPECT_GT(rs.retransmits, 0);
  EXPECT_GT(rs.retransmitted_bytes, 0);
  EXPECT_EQ(rs.collective_reissues, 0);  // no collectives in this strategy
  EXPECT_GT(rs.recovery_latency, SimTime::zero());
  // The fused strategy can hide the whole recovery inside the compute
  // phase's slack (quiet only stalls if the retransmit outlives the
  // kernel), so the run is never *faster* — and never wrong.
  EXPECT_GE(flapped.stats.total, clean.stats.total);
  EXPECT_EQ(flapped.stats.batches, clean.stats.batches);
}

TEST(FlapRecoveryTest, DroppedCollectiveChunksAreReissued) {
  const auto cfg_clean = quickWeak(2, 3);
  const auto clean = engine::ScenarioRunner(cfg_clean).run("nccl_collective");
  auto cfg_flap = cfg_clean;
  cfg_flap.faults.specs.push_back(
      flapInsideBatch(clean, 1, /*in_comm_phase=*/true));
  const auto flapped =
      engine::ScenarioRunner(cfg_flap).run("nccl_collective");
  ASSERT_TRUE(flapped.resilience.has_value());
  const auto& rs = *flapped.resilience;
  EXPECT_GT(rs.dropped_flows, 0);
  EXPECT_GT(rs.collective_reissues, 0);
  EXPECT_EQ(rs.retransmits, 0);  // no one-sided puts in this strategy
  EXPECT_GT(flapped.stats.total, clean.stats.total);
}

TEST(FlapRecoveryTest, FlapWiderThanTheRetryBudgetThrows) {
  Rig rig(2);
  FaultPlan plan;
  FaultSpec flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.start = SimTime::zero();
  flap.end = SimTime::ms(100.0);  // default budget covers ~27 ms
  plan.specs.push_back(flap);
  fault::FaultInjector injector(plan);
  rig.attach(injector);
  EXPECT_THROW(
      injector.reliablePut(0, 1, 1 << 20, 16, SimTime::zero()),
      Error);
}

TEST(FlapRecoveryTest, SeededFlapWindowsAreClampedToTheRetryBudget) {
  // An unwindowed flap draws its window from the horizon; with a
  // run-length horizon the raw draw (10-30% of it) would dwarf the
  // ~27 ms retry budget. The seeded draw clamps flap width to half the
  // budget, so any horizon yields a survivable outage.
  Rig rig(2);
  FaultPlan plan;
  plan.seed = 3;
  plan.horizon = SimTime::ms(400.0);
  FaultSpec flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.a = 0;
  flap.b = 1;
  plan.specs.push_back(flap);
  fault::FaultInjector injector(plan);
  rig.attach(injector);
  const auto& m = injector.materialized();
  ASSERT_EQ(m.size(), 1u);
  EXPECT_LE(m[0].end - m[0].start, SimTime::ms(14.0));  // ~half of ~27.5
}

// --- Functional correctness under faults -------------------------------------

std::vector<float> snapshot(gpu::DeviceBuffer& buf, std::int64_t n) {
  const auto s = buf.span();
  return std::vector<float>(s.begin(), s.begin() + n);
}

emb::EmbLayerSpec functionalSpec() {
  emb::EmbLayerSpec spec;
  spec.total_tables = 8;
  spec.rows_per_table = 64;
  spec.dim = 8;
  spec.batch_size = 16;
  spec.min_pooling = 0;
  spec.max_pooling = 6;
  spec.seed = 0xfa;
  spec.index_space = 1u << 16;
  return spec;
}

/// Runs `batches` functional batches and asserts every GPU's output
/// matches the serial reference, returning the cumulative batch timings
/// (used to calibrate fault windows for the perturbed runs).
template <typename Retriever>
std::vector<core::BatchTiming> runFunctional(emb::ShardedEmbeddingLayer& layer,
                                             Retriever& retriever, int gpus,
                                             int batches) {
  const auto spec = functionalSpec();
  std::vector<core::BatchTiming> timings;
  Rng rng(0xfb);
  for (int b = 0; b < batches; ++b) {
    const auto batch =
        emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
    timings.push_back(retriever.runBatch(batch));
    for (int g = 0; g < gpus; ++g) {
      const auto n = layer.sharding().outputElements(g, spec.dim);
      const auto ref = layer.referenceOutput(batch, g);
      EXPECT_EQ(snapshot(retriever.output(g), n), ref)
          << "batch " << b << " gpu " << g;
    }
  }
  return timings;
}

TEST(FunctionalUnderFaultsTest, BaselineOutputsStayExactThroughMidRunFaults) {
  const int gpus = 3;
  // Calibration: clean functional run records the batch timeline.
  Rig clean_rig(gpus, gpu::ExecutionMode::kFunctional);
  emb::ShardedEmbeddingLayer clean_layer(clean_rig.system, functionalSpec());
  core::CollectiveRetriever clean(clean_layer, clean_rig.comm);
  const auto timings = runFunctional(clean_layer, clean, gpus, 3);

  // Perturbed run: degrade all links for the whole run, and flap inside
  // batch 1's comm phase so chunks are provably in flight when it dies.
  SimTime b1 = timings[0].total;
  FaultPlan plan;
  FaultSpec degrade;
  degrade.kind = FaultKind::kLinkDegrade;
  degrade.magnitude = 0.5;
  degrade.start = SimTime::zero();
  degrade.end = SimTime::ms(10000.0);
  plan.specs.push_back(degrade);
  FaultSpec flap;
  flap.kind = FaultKind::kLinkFlap;
  // Degradation doubles wire time, so scale the comm-phase placement.
  flap.start = b1 + timings[1].compute_phase + timings[1].comm_phase * 0.5;
  flap.end = flap.start + timings[1].comm_phase * 2.0;
  plan.specs.push_back(flap);

  Rig rig(gpus, gpu::ExecutionMode::kFunctional);
  emb::ShardedEmbeddingLayer layer(rig.system, functionalSpec());
  fault::FaultInjector injector(plan);
  rig.attach(injector);
  core::CollectiveRetriever baseline(layer, rig.comm);
  runFunctional(layer, baseline, gpus, 3);  // asserts outputs == reference
  EXPECT_GT(injector.stats().dropped_flows, 0);
  EXPECT_GT(injector.stats().collective_reissues, 0);
}

TEST(FunctionalUnderFaultsTest, PgasOutputsStayExactThroughMidRunFaults) {
  const int gpus = 3;
  Rig clean_rig(gpus, gpu::ExecutionMode::kFunctional);
  emb::ShardedEmbeddingLayer clean_layer(clean_rig.system, functionalSpec());
  core::PgasFusedRetriever clean(clean_layer, clean_rig.runtime, {});
  const auto timings = runFunctional(clean_layer, clean, gpus, 3);

  // Puts fly throughout the fused kernel: flap the middle of batch 1's
  // compute span (stretched 2x by a whole-run straggler for margin).
  SimTime b1 = timings[0].total;
  FaultPlan plan;
  FaultSpec straggle;
  straggle.kind = FaultKind::kStraggler;
  straggle.magnitude = 2.0;
  straggle.start = SimTime::zero();
  straggle.end = SimTime::ms(10000.0);
  plan.specs.push_back(straggle);
  FaultSpec flap;
  flap.kind = FaultKind::kLinkFlap;
  flap.start = b1 * 2.0 + timings[1].compute_phase * 0.5;
  flap.end = flap.start + timings[1].compute_phase * 2.0;
  plan.specs.push_back(flap);

  Rig rig(gpus, gpu::ExecutionMode::kFunctional);
  emb::ShardedEmbeddingLayer layer(rig.system, functionalSpec());
  fault::FaultInjector injector(plan);
  rig.attach(injector);
  core::PgasFusedRetriever pgas(layer, rig.runtime, {});
  runFunctional(layer, pgas, gpus, 3);  // asserts outputs == reference
  EXPECT_GT(injector.stats().dropped_flows, 0);
  EXPECT_GT(injector.stats().retransmits, 0);
}

// --- Collective wait watchdog ------------------------------------------------

TEST(WaitTimeoutTest, SlowCollectiveIsFlaggedFastOneIsNot) {
  Rig rig(2);
  std::vector<std::vector<std::int64_t>> m = {{0, 16 << 20}, {16 << 20, 0}};
  auto slow = rig.comm.allToAllSingle(m);
  slow.wait(rig.system, SimTime::ns(1.0));
  EXPECT_TRUE(slow.completed());  // the sim always completes...
  EXPECT_TRUE(slow.timedOut());   // ...the flag reports the blown SLO
  auto fine = rig.comm.allToAllSingle(m);
  fine.wait(rig.system, SimTime::sec(10.0));
  EXPECT_FALSE(fine.timedOut());
}

// --- SLO fallback policy -----------------------------------------------------

TEST(SloTrackerTest, FiresAfterPatienceConsecutiveOverSloBatches) {
  core::FallbackPolicy policy;
  policy.slo_ms = 1.0;
  policy.patience = 3;
  core::SloTracker tracker(policy);
  EXPECT_FALSE(tracker.record(SimTime::ms(2.0)));
  EXPECT_FALSE(tracker.record(SimTime::ms(2.0)));
  EXPECT_FALSE(tracker.record(SimTime::ms(0.5)));  // resets the streak
  EXPECT_FALSE(tracker.record(SimTime::ms(2.0)));
  EXPECT_FALSE(tracker.record(SimTime::ms(2.0)));
  EXPECT_TRUE(tracker.record(SimTime::ms(2.0)));
  EXPECT_FALSE(tracker.record(SimTime::ms(9.0)));  // fires at most once
}

TEST(SloTrackerTest, CalibratesFromTheFirstBatchWhenNoAbsoluteSlo) {
  core::FallbackPolicy policy;
  policy.slo_factor = 1.5;
  policy.patience = 2;
  core::SloTracker tracker(policy);
  EXPECT_FALSE(tracker.record(SimTime::ms(10.0)));  // calibrates slo = 15ms
  EXPECT_EQ(tracker.slo(), SimTime::ms(15.0));
  EXPECT_FALSE(tracker.record(SimTime::ms(16.0)));
  EXPECT_TRUE(tracker.record(SimTime::ms(16.0)));
}

TEST(SloFallbackTest, DegradedPgasRunFallsBackToTheCollectiveBaseline) {
  auto cfg = quickWeak(2, 6);
  cfg.fallback.slo_ms = 0.001;  // everything is over-SLO
  cfg.fallback.patience = 2;
  const auto result = engine::ScenarioRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(result.resilience.has_value());
  EXPECT_EQ(result.resilience->fallback_switches, 1);
  EXPECT_EQ(result.resilience->fallback_retriever, "nccl_collective");
  EXPECT_EQ(result.stats.batches, 6);  // the run still completes
}

TEST(SloFallbackTest, NoSwitchWhenTheFallbackIsAlreadyActive) {
  auto cfg = quickWeak(2, 4);
  cfg.fallback.slo_ms = 0.001;
  cfg.fallback.patience = 2;
  const auto result = engine::ScenarioRunner(cfg).run("nccl_collective");
  EXPECT_FALSE(result.resilience.has_value());
}

TEST(SloFallbackTest, StragglerOnsetTriggersTheCalibratedPolicy) {
  // The realistic story: the run calibrates its SLO from the healthy
  // first batch, then a straggler sets in and the policy degrades the
  // strategy. The straggler keeps slowing the fallback too, but the
  // switch itself must have happened.
  const auto clean = engine::ScenarioRunner(quickWeak(2, 5)).run("pgas_fused");
  SimTime onset = clean.per_batch[0].total + clean.per_batch[1].total * 0.5;
  auto cfg = quickWeak(2, 5);
  cfg.fallback.slo_factor = 1.2;
  cfg.fallback.patience = 2;
  FaultSpec straggle;
  straggle.kind = FaultKind::kStraggler;
  straggle.magnitude = 4.0;
  straggle.start = onset;
  straggle.end = SimTime::ms(10000.0);
  cfg.faults.specs.push_back(straggle);
  const auto result = engine::ScenarioRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(result.resilience.has_value());
  EXPECT_EQ(result.resilience->fallback_switches, 1);
  EXPECT_EQ(result.resilience->fallback_retriever, "nccl_collective");
}

// --- simsan certification ----------------------------------------------------

/// Faulted config for the certification matrix: a flap inside batch 1
/// (placed from the clean run's own timeline) plus degradation and a
/// straggler from batch 2 on (after the flap, so its placement holds).
engine::ExperimentConfig certifiedConfig(
    int gpus, const std::string& retriever,
    const engine::ExperimentResult& clean) {
  auto cfg = quickWeak(gpus, 3);
  cfg.simsan = true;
  const bool fused = retriever == "pgas_fused";
  cfg.faults.specs.push_back(
      flapInsideBatch(clean, 1, /*in_comm_phase=*/!fused));
  const SimTime late = clean.per_batch[0].total + clean.per_batch[1].total;
  FaultSpec degrade;
  degrade.kind = FaultKind::kLinkDegrade;
  degrade.magnitude = 0.5;
  degrade.start = late;
  degrade.end = SimTime::ms(10000.0);
  cfg.faults.specs.push_back(degrade);
  FaultSpec straggle;
  straggle.kind = FaultKind::kStraggler;
  straggle.a = 0;
  straggle.magnitude = 2.0;
  straggle.start = late;
  straggle.end = SimTime::ms(10000.0);
  cfg.faults.specs.push_back(straggle);
  return cfg;
}

using CertParams = std::tuple<int /*gpus*/, const char* /*retriever*/>;
class RecoveryCertification : public ::testing::TestWithParam<CertParams> {};

TEST_P(RecoveryCertification, RetransmitAndReissuePathsAreRaceFree) {
  const auto [gpus, retriever] = GetParam();
  const auto clean =
      engine::ScenarioRunner(quickWeak(gpus, 3)).run(retriever);
  const auto cfg = certifiedConfig(gpus, retriever, clean);
  const auto result = engine::ScenarioRunner(cfg).run(retriever);
  ASSERT_TRUE(result.sanitizer.has_value());
  EXPECT_TRUE(result.sanitizer->clean()) << result.sanitizer->report();
  ASSERT_TRUE(result.resilience.has_value());
  EXPECT_EQ(result.stats.batches, 3);
  // The flap was placed inside the strategy's own traffic phase, so the
  // recovery path demonstrably ran (the pipelined strategy overlaps its
  // phases, so only the two phase-separable strategies guarantee drops).
  if (std::string(retriever) != "nccl_pipelined") {
    EXPECT_GT(result.resilience->dropped_flows, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RecoveryCertification,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values("nccl_collective", "pgas_fused",
                                         "nccl_pipelined")));

TEST(SimsanBugSeedTest, RetransmitWithoutRequietIsCaughtByName) {
  // The seeded bug: the retransmit path lands the recovered put without
  // re-arming quiet, so the kernel can "complete" before the write is
  // visible. simsan must flag it — and the identical plan without the
  // bug knob must stay clean (the pair is the certification).
  const int gpus = 2;
  const auto clean = engine::ScenarioRunner(quickWeak(gpus, 3)).run("pgas_fused");
  auto cfg = quickWeak(gpus, 3);
  cfg.simsan = true;
  cfg.faults.specs.push_back(
      flapInsideBatch(clean, 1, /*in_comm_phase=*/false));

  const auto fixed = engine::ScenarioRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(fixed.sanitizer.has_value());
  ASSERT_TRUE(fixed.resilience.has_value());
  ASSERT_GT(fixed.resilience->retransmits, 0);  // the bug path would run
  EXPECT_TRUE(fixed.sanitizer->clean()) << fixed.sanitizer->report();

  cfg.faults.bug_retransmit_without_quiet = true;
  const auto buggy = engine::ScenarioRunner(cfg).run("pgas_fused");
  ASSERT_TRUE(buggy.sanitizer.has_value());
  EXPECT_FALSE(buggy.sanitizer->clean());
  bool named = false;
  for (const auto& v : buggy.sanitizer->violations) {
    if (v.message.find("retransmit") != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << buggy.sanitizer->report();
}

}  // namespace
}  // namespace pgasemb

// Tests for the observability layer (kernel/flow observers, Chrome-trace
// export) and the newer fabric topologies / collectives.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "trace/chrome_trace.hpp"
#include "util/expect.hpp"

namespace pgasemb {
namespace {

gpu::SystemConfig timingConfig(int gpus) {
  gpu::SystemConfig cfg;
  cfg.num_gpus = gpus;
  cfg.memory_capacity_bytes = 1 << 30;
  cfg.mode = gpu::ExecutionMode::kTimingOnly;
  return cfg;
}

// --- Observers -----------------------------------------------------------------

TEST(ObserverTest, KernelObserverSeesComputeAndQuiet) {
  gpu::MultiGpuSystem system(timingConfig(2));
  fabric::Fabric fabric(system.simulator(),
                        std::make_unique<fabric::NvlinkAllToAllTopology>(
                            2, fabric::LinkParams{}));
  pgas::PgasRuntime runtime(system, fabric);

  int spans = 0;
  SimTime seen_completion;
  system.setKernelObserver([&](int device, const std::string& name,
                               SimTime start, SimTime end,
                               SimTime completion) {
    ++spans;
    EXPECT_EQ(device, 0);
    EXPECT_EQ(name, "k");
    EXPECT_LT(start, end);
    EXPECT_GE(completion, end);
    seen_completion = completion;
  });

  gpu::KernelDesc k;
  k.name = "k";
  k.duration = SimTime::us(10);
  // Big remote payload so quiet extends past compute end.
  auto plan = pgas::makeUniformPlan({0, 64 << 20}, 0, 4, 256);
  runtime.attachMessagePlan(k, 0, std::move(plan));
  system.launchKernel(0, k);
  system.syncAll();
  EXPECT_EQ(spans, 1);
  EXPECT_GT(seen_completion, SimTime::us(10));
}

TEST(ObserverTest, FlowObserverSeesEveryTransfer) {
  sim::Simulator sim;
  fabric::Fabric fabric(sim, std::make_unique<fabric::NvlinkAllToAllTopology>(
                                 2, fabric::LinkParams{}));
  int flows = 0;
  std::int64_t bytes = 0;
  fabric.setFlowObserver([&](int src, int dst, std::int64_t payload,
                             std::int64_t msgs, SimTime start,
                             SimTime end) {
    ++flows;
    bytes += payload;
    EXPECT_EQ(src, 0);
    EXPECT_EQ(dst, 1);
    EXPECT_GT(msgs, 0);
    EXPECT_LT(start, end);
  });
  fabric.transfer(0, 1, 1000, 4, SimTime::zero());
  fabric.transfer(0, 1, 2000, 8, SimTime::zero());
  fabric.transfer(1, 1, 500, 1, SimTime::zero());  // local: not observed
  EXPECT_EQ(flows, 2);
  EXPECT_EQ(bytes, 3000);
}

// --- Chrome trace ---------------------------------------------------------------

TEST(ChromeTraceTest, RecordsAndSerializes) {
  gpu::MultiGpuSystem system(timingConfig(2));
  fabric::Fabric fabric(system.simulator(),
                        std::make_unique<fabric::NvlinkAllToAllTopology>(
                            2, fabric::LinkParams{}));
  collective::Communicator comm(system, fabric);
  pgas::PgasRuntime runtime(system, fabric);
  emb::EmbLayerSpec spec;
  spec.total_tables = 4;
  spec.rows_per_table = 10000;
  spec.dim = 16;
  spec.batch_size = 1024;
  spec.max_pooling = 8;
  emb::ShardedEmbeddingLayer layer(system, spec);

  trace::ChromeTraceRecorder recorder;
  recorder.attach(system, fabric);
  core::CollectiveRetriever baseline(layer, comm);
  const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
  baseline.runBatch(batch);
  recorder.detach();

  // 2 lookup + 2 unpack kernels; 2 a2a directions.
  EXPECT_EQ(recorder.kernelSpanCount(), 4u);
  EXPECT_GE(recorder.flowCount(), 2u);

  const std::string json = recorder.toJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("emb_lookup_baseline.gpu0"), std::string::npos);
  EXPECT_NE(json.find("emb_unpack.gpu1"), std::string::npos);
  EXPECT_NE(json.find("\"cat\": \"wire\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(ChromeTraceTest, QuietTailEmittedForPgas) {
  gpu::MultiGpuSystem system(timingConfig(2));
  fabric::Fabric fabric(system.simulator(),
                        std::make_unique<fabric::NvlinkAllToAllTopology>(
                            2, fabric::LinkParams{}));
  pgas::PgasRuntime runtime(system, fabric);
  trace::ChromeTraceRecorder recorder;
  recorder.attach(system, fabric);

  gpu::KernelDesc k;
  k.name = "fused";
  k.duration = SimTime::us(5);
  auto plan = pgas::makeUniformPlan({0, 64 << 20}, 0, 2, 256);
  runtime.attachMessagePlan(k, 0, std::move(plan));
  system.launchKernel(0, k);
  system.syncAll();
  recorder.detach();
  EXPECT_NE(recorder.toJson().find("fused.quiet"), std::string::npos);
}

TEST(ChromeTraceTest, WritesFile) {
  gpu::MultiGpuSystem system(timingConfig(1));
  fabric::Fabric fabric(system.simulator(),
                        std::make_unique<fabric::NvlinkAllToAllTopology>(
                            1, fabric::LinkParams{}));
  trace::ChromeTraceRecorder recorder;
  recorder.attach(system, fabric);
  gpu::KernelDesc k;
  k.name = "solo";
  k.duration = SimTime::us(1);
  system.launchKernel(0, k);
  system.syncAll();
  const std::string path = "/tmp/pgasemb_trace_test.json";
  recorder.writeFile(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::filesystem::remove(path);
  recorder.detach();
}

// --- New topologies -------------------------------------------------------------

TEST(NvSwitchTest, EgressSharesThePort) {
  sim::Simulator sim;
  fabric::Fabric fabric(sim, std::make_unique<fabric::NvSwitchTopology>(
                                 4, fabric::LinkParams{}));
  // Two flows from GPU 0 to different destinations contend at 0's up
  // port (unlike the pairwise topology, where they are independent).
  const auto d1 = fabric.transfer(0, 1, 10 << 20, 1, SimTime::zero());
  const auto d2 = fabric.transfer(0, 2, 10 << 20, 1, SimTime::zero());
  EXPECT_GT(d2.delivered, d1.delivered);
}

TEST(NvSwitchTest, IngressSharesThePortToo) {
  sim::Simulator sim;
  fabric::Fabric fabric(sim, std::make_unique<fabric::NvSwitchTopology>(
                                 4, fabric::LinkParams{}));
  const auto d1 = fabric.transfer(1, 0, 10 << 20, 1, SimTime::zero());
  const auto d2 = fabric.transfer(2, 0, 10 << 20, 1, SimTime::zero());
  EXPECT_GT(d2.delivered, d1.delivered);
}

TEST(RingTest, RouteLengthIsHopDistance) {
  fabric::RingTopology topo(4, fabric::LinkParams{});
  EXPECT_EQ(topo.route(0, 1).size(), 1u);
  EXPECT_EQ(topo.route(0, 3).size(), 3u);
  EXPECT_EQ(topo.route(3, 0).size(), 1u);  // wraps around
  EXPECT_TRUE(topo.route(2, 2).empty());
}

TEST(RingTest, MultiHopIsSlowerThanNeighbor) {
  sim::Simulator sim;
  fabric::Fabric fabric(sim, std::make_unique<fabric::RingTopology>(
                                 4, fabric::LinkParams{}));
  const auto near = fabric.transfer(0, 1, 1 << 20, 1, SimTime::zero());
  const auto far = fabric.transfer(1, 0, 1 << 20, 1, SimTime::zero());
  // 1 -> 0 takes 3 hops on a unidirectional ring.
  EXPECT_GT(far.delivered - far.injected,
            (near.delivered - near.injected) * 2);
}

// --- New collectives -----------------------------------------------------------

struct CommRig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  explicit CommRig(int gpus)
      : system(timingConfig(gpus)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric) {}
};

TEST(CollectiveExtraTest, GatherOnlyNonRootsSend) {
  CommRig rig(4);
  auto req = rig.comm.gather(2, 1 << 20);
  req.wait(rig.system);
  EXPECT_EQ(rig.fabric.totalPayloadBytes(), 3LL << 20);
}

TEST(CollectiveExtraTest, ScatterOnlyRootSends) {
  CommRig rig(4);
  auto req = rig.comm.scatter(0, 1 << 20);
  req.wait(rig.system);
  EXPECT_EQ(rig.fabric.totalPayloadBytes(), 3LL << 20);
}

TEST(CollectiveExtraTest, BarrierIsCheapButNotFree) {
  CommRig rig(4);
  const SimTime before = rig.system.hostNow();
  auto req = rig.comm.barrier();
  const SimTime after = req.wait(rig.system);
  EXPECT_GT(after, before);
  EXPECT_LT(after - before, SimTime::ms(1));
  EXPECT_EQ(rig.fabric.totalPayloadBytes(), 4);  // 4 one-byte flags
}

TEST(CollectiveExtraTest, SingleGpuBarrierCompletes) {
  CommRig rig(1);
  auto req = rig.comm.barrier();
  req.wait(rig.system);
  EXPECT_TRUE(req.completed());
}

}  // namespace
}  // namespace pgasemb

// Tests for the sparse-input partitioning model (paper §V).
#include <gtest/gtest.h>

#include "emb/input_partition.hpp"
#include "emb/workload.hpp"

namespace pgasemb::emb {
namespace {

gpu::SystemConfig timingConfig(int gpus) {
  gpu::SystemConfig cfg;
  cfg.num_gpus = gpus;
  cfg.memory_capacity_bytes = 64LL << 30;
  cfg.mode = gpu::ExecutionMode::kTimingOnly;
  return cfg;
}

TEST(InputPartitionTest, TableWiseHostCostIsSmall) {
  gpu::MultiGpuSystem system(timingConfig(4));
  const auto spec = weakScalingLayerSpec(4);
  ShardedEmbeddingLayer layer(system, spec);
  const auto batch = SparseBatch::statistical(spec.batchSpec());
  const auto cost = inputPartitionCost(layer, batch, /*fused=*/false);
  // "The time spent on input partitioning is small" — well under 100 us
  // for 256 tables.
  EXPECT_LT(cost.host_time, SimTime::us(100));
  EXPECT_DOUBLE_EQ(cost.extra_kernel_bytes_per_gpu, 0.0);
}

TEST(InputPartitionTest, RowWiseHostCostScalesWithIndices) {
  gpu::MultiGpuSystem system(timingConfig(4));
  const auto spec = weakScalingLayerSpec(4);
  ShardedEmbeddingLayer layer(system, spec, ShardingScheme::kRowWise);
  const auto batch = SparseBatch::statistical(spec.batchSpec());
  const auto cost = inputPartitionCost(layer, batch, /*fused=*/false);
  // ~270M indices to hash-route: hundreds of ms of serial host time.
  EXPECT_GT(cost.host_time, SimTime::ms(100));

  auto small_spec = spec;
  small_spec.max_pooling = 2;  // ~32x fewer indices
  const auto small_batch = SparseBatch::statistical(small_spec.batchSpec());
  const auto small_cost =
      inputPartitionCost(layer, small_batch, /*fused=*/false);
  EXPECT_LT(small_cost.host_time * 10, cost.host_time);
}

TEST(InputPartitionTest, FusedMovesCostFromHostToKernel) {
  gpu::MultiGpuSystem system(timingConfig(4));
  const auto spec = weakScalingLayerSpec(4);
  ShardedEmbeddingLayer layer(system, spec, ShardingScheme::kRowWise);
  const auto batch = SparseBatch::statistical(spec.batchSpec());
  const auto host = inputPartitionCost(layer, batch, /*fused=*/false);
  const auto fused = inputPartitionCost(layer, batch, /*fused=*/true);
  EXPECT_LT(fused.host_time, host.host_time / 100);
  EXPECT_GT(fused.extra_kernel_bytes_per_gpu, 0.0);
  // The extra kernel read is the replicated index stream (8 B each).
  EXPECT_GT(fused.extra_kernel_bytes_per_gpu,
            batch.totalIndices(0, spec.total_tables) * 8.0 * 0.99);
}

TEST(InputPartitionTest, ExactForMaterializedBatches) {
  gpu::SystemConfig cfg = timingConfig(2);
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.memory_capacity_bytes = 256 << 20;
  gpu::MultiGpuSystem system(cfg);
  auto spec = tinyLayerSpec();
  spec.min_pooling = spec.max_pooling = 3;  // exactly 3 indices per bag
  ShardedEmbeddingLayer layer(system, spec, ShardingScheme::kRowWise);
  Rng rng(1);
  const auto batch = SparseBatch::generateUniform(spec.batchSpec(), rng);
  InputPartitionParams params;
  params.host_fixed = SimTime::zero();
  const auto cost = inputPartitionCost(layer, batch, false, params);
  const std::int64_t indices = spec.total_tables * spec.batch_size * 3;
  EXPECT_EQ(cost.host_time, params.host_per_index * indices);
}

}  // namespace
}  // namespace pgasemb::emb

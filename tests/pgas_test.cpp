// Unit tests for the PGAS runtime: symmetric heap, message plans,
// in-kernel injection with quiet semantics, the communication counter,
// and the async aggregator.
#include <gtest/gtest.h>

#include <memory>

#include "fabric/fabric.hpp"
#include "gpu/system.hpp"
#include "pgas/aggregator.hpp"
#include "pgas/comm_counter.hpp"
#include "pgas/message_plan.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb::pgas {
namespace {

struct Rig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  PgasRuntime runtime;

  explicit Rig(int gpus,
               gpu::ExecutionMode mode = gpu::ExecutionMode::kTimingOnly,
               fabric::LinkParams link = {})
      : system(makeConfig(gpus, mode)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(gpus, link)),
        runtime(system, fabric) {}

  static gpu::SystemConfig makeConfig(int gpus, gpu::ExecutionMode mode) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 1 << 30;
    cfg.mode = mode;
    return cfg;
  }
};

// --- Symmetric heap ----------------------------------------------------------

TEST(SymmetricHeapTest, AllocatesOnEveryPe) {
  Rig rig(4, gpu::ExecutionMode::kFunctional);
  auto buf = rig.runtime.heap().alloc(256);
  EXPECT_EQ(buf.numPes(), 4);
  EXPECT_EQ(buf.sizePerPe(), 256);
  for (int pe = 0; pe < 4; ++pe) {
    EXPECT_EQ(buf.on(pe).size(), 256);
    EXPECT_EQ(rig.system.device(pe).memoryUsedBytes(), 256 * 4);
  }
  rig.runtime.heap().free(buf);
  EXPECT_FALSE(buf.valid());
  EXPECT_EQ(rig.system.device(0).memoryUsedBytes(), 0);
}

TEST(SymmetricHeapTest, PartitionsAreIndependentStorage) {
  Rig rig(2, gpu::ExecutionMode::kFunctional);
  auto buf = rig.runtime.heap().alloc(8);
  buf.span(0)[3] = 1.0f;
  EXPECT_EQ(buf.span(1)[3], 0.0f);
  rig.runtime.heap().free(buf);
}

TEST(SymmetricHeapTest, BadPeThrows) {
  Rig rig(2);
  auto buf = rig.runtime.heap().alloc(8);
  EXPECT_THROW(buf.on(5), InvalidArgumentError);
  rig.runtime.heap().free(buf);
}

// --- Message plans -----------------------------------------------------------

TEST(MessagePlanTest, UniformPlanConservesBytes) {
  const auto plan = makeUniformPlan({0, 1000, 2000, 3000}, 0, 7, 256);
  EXPECT_EQ(plan.slices, 7);
  EXPECT_EQ(plan.totalPayloadBytes(), 6000);
  // ceil(per-slice bytes / 256) summed >= 6000/256.
  EXPECT_GE(plan.totalMessages(), 24);
}

TEST(MessagePlanTest, SelfTrafficExcluded) {
  const auto plan = makeUniformPlan({500, 500}, 1, 4, 256);
  EXPECT_EQ(plan.totalPayloadBytes(), 500);
  for (const auto& slice : plan.flows) {
    for (const auto& f : slice) EXPECT_EQ(f.dst, 0);
  }
}

TEST(MessagePlanTest, SpreadIsEven) {
  const auto plan = makeUniformPlan({0, 100000}, 0, 10, 256);
  std::int64_t total = 0;
  for (const auto& slice : plan.flows) {
    ASSERT_EQ(slice.size(), 1u);
    // Whole-message granularity: each slice within one message of even.
    EXPECT_NEAR(static_cast<double>(slice[0].payload_bytes), 10000.0, 256.0);
    total += slice[0].payload_bytes;
  }
  EXPECT_EQ(total, 100000);
}

TEST(MessagePlanTest, TinyPayloadStillDelivered) {
  const auto plan = makeUniformPlan({0, 3}, 0, 8, 256);
  EXPECT_EQ(plan.totalPayloadBytes(), 3);
  EXPECT_EQ(plan.totalMessages(), 1);
}

// --- In-kernel injection + quiet ---------------------------------------------

TEST(PgasRuntimeTest, AttachedPlanInjectsDuringKernel) {
  Rig rig(2);
  gpu::KernelDesc desc;
  desc.name = "fused";
  desc.duration = SimTime::ms(1);
  auto plan = makeUniformPlan({0, 1 << 20}, 0, 16, 256);
  rig.runtime.attachMessagePlan(desc, 0, std::move(plan));
  rig.system.launchKernel(0, desc);
  rig.system.syncAll();
  EXPECT_EQ(rig.fabric.totalPayloadBytes(), 1 << 20);
  // Injections spread across the kernel: several non-empty buckets.
  int nonzero = 0;
  const auto& c = rig.fabric.injectionCounter();
  for (std::size_t i = 0; i < c.numBuckets(); ++i) {
    if (c.bucket(i) > 0) ++nonzero;
  }
  EXPECT_GE(nonzero, 8);
}

TEST(PgasRuntimeTest, QuietExtendsKernelWhenCommDominates) {
  // Tiny compute, huge communication: the kernel must end at delivery.
  Rig rig(2);
  gpu::KernelDesc desc;
  desc.name = "comm_bound";
  desc.duration = SimTime::us(10);
  auto plan = makeUniformPlan({0, 256 << 20}, 0, 4, 256);
  rig.runtime.attachMessagePlan(desc, 0, std::move(plan));
  rig.system.launchKernel(0, desc);
  rig.system.syncAll();
  // 256 MiB at ~42 GB/s effective >> 10 us of compute.
  EXPECT_GT(rig.system.stream(0).lastCompletion(), SimTime::ms(5));
}

TEST(PgasRuntimeTest, QuietIsFreeWhenCommHidden) {
  Rig rig(2);
  gpu::KernelDesc desc;
  desc.name = "hidden";
  desc.duration = SimTime::ms(10);
  auto plan = makeUniformPlan({0, 1 << 20}, 0, 64, 256);
  rig.runtime.attachMessagePlan(desc, 0, std::move(plan));
  rig.system.launchKernel(0, desc);
  rig.system.syncAll();
  const SimTime end = rig.system.stream(0).lastCompletion();
  // Completion within a tight bound of compute end (last slice drain).
  EXPECT_LT(end, SimTime::ms(10.2) +
                     rig.system.costModel().kernel_launch_overhead);
}

TEST(PgasRuntimeTest, CounterRecordsPaperUnits) {
  Rig rig(2);
  CommCounter counter(SimTime::us(50));
  gpu::KernelDesc desc;
  desc.name = "counted";
  desc.duration = SimTime::ms(1);
  auto plan = makeUniformPlan({0, 1 << 20}, 0, 16, 256);
  rig.runtime.attachMessagePlan(desc, 0, std::move(plan), &counter);
  rig.system.launchKernel(0, desc);
  rig.system.syncAll();
  EXPECT_DOUBLE_EQ(counter.totalUnits(), (1 << 20) / 256.0);
}

TEST(PgasRuntimeTest, HostPutDelivers) {
  Rig rig(2);
  const SimTime t = rig.runtime.put(0, 1, 4096, 16);
  EXPECT_GT(t, rig.system.hostNow());
}

TEST(PgasRuntimeTest, BadSourcePeThrows) {
  Rig rig(2);
  gpu::KernelDesc desc;
  desc.duration = SimTime::us(1);
  EXPECT_THROW(
      rig.runtime.attachMessagePlan(desc, 7, makeUniformPlan({0, 1}, 0, 1,
                                                             256)),
      InvalidArgumentError);
}

// --- Aggregator ----------------------------------------------------------------

TEST(AggregatorTest, ConservesBytesAndReducesMessages) {
  const auto plan = makeUniformPlan({0, 1 << 20}, 0, 64, 256);
  AggregatorParams params;
  params.aggregation_bytes = 64 * 1024;
  const auto agg = aggregatePlan(plan, SimTime::ms(1), params);
  EXPECT_EQ(agg.totalPayloadBytes(), plan.totalPayloadBytes());
  EXPECT_LT(agg.totalMessages(), plan.totalMessages() / 10);
}

TEST(AggregatorTest, SizeTriggeredFlushesAreFullBuffers) {
  const auto plan = makeUniformPlan({0, 1 << 20}, 0, 64, 256);
  AggregatorParams params;
  params.aggregation_bytes = 64 * 1024;
  params.max_wait = SimTime::sec(1);  // effectively never by time
  const auto agg = aggregatePlan(plan, SimTime::ms(1), params);
  // All but the final quiet flush are exactly aggregation_bytes.
  std::int64_t full = 0, partial = 0;
  for (const auto& slice : agg.flows) {
    for (const auto& f : slice) {
      if (f.payload_bytes == params.aggregation_bytes) {
        ++full;
      } else {
        ++partial;
      }
    }
  }
  EXPECT_EQ(full, (1 << 20) / params.aggregation_bytes);
  EXPECT_EQ(partial, 0);  // 1 MiB divides evenly into 16 KiB buffers
}

TEST(AggregatorTest, MaxWaitFlushesPartialBuffers) {
  // Slow trickle to one destination: without the wait trigger everything
  // would flush only at the end.
  MessagePlan plan;
  plan.slices = 100;
  plan.flows.resize(100);
  for (int s = 0; s < 100; ++s) {
    plan.flows[static_cast<std::size_t>(s)].push_back(
        SliceFlow{1, 128, 1});
  }
  AggregatorParams params;
  params.aggregation_bytes = 1 << 20;      // never by size
  params.max_wait = SimTime::us(100);      // 10 slices of a 1 ms kernel
  const auto agg = aggregatePlan(plan, SimTime::ms(1), params);
  std::int64_t flushes = agg.totalMessages();
  EXPECT_GT(flushes, 5);
  EXPECT_LT(flushes, 20);
  EXPECT_EQ(agg.totalPayloadBytes(), 100 * 128);
}

TEST(AggregatorTest, QuietDrainsRemainder) {
  MessagePlan plan;
  plan.slices = 4;
  plan.flows.resize(4);
  plan.flows[0].push_back(SliceFlow{1, 100, 1});
  AggregatorParams params;  // defaults: large threshold, long wait
  params.aggregation_bytes = 1 << 20;
  params.max_wait = SimTime::sec(10);
  const auto agg = aggregatePlan(plan, SimTime::ms(1), params);
  EXPECT_EQ(agg.totalPayloadBytes(), 100);
  // Drained at the last slice.
  EXPECT_FALSE(agg.flows[3].empty());
}

TEST(AggregatorTest, AggregatedKernelFasterOnMessageRateLimitedLink) {
  fabric::LinkParams nic;
  nic.bandwidth_bytes_per_sec = 25e9;
  nic.latency = SimTime::us(5);
  nic.header_bytes = 64;
  nic.max_messages_per_sec = 10e6;  // IB-like message-rate ceiling

  auto run = [&](const AggregatorParams* agg) {
    Rig rig(2, gpu::ExecutionMode::kTimingOnly, nic);
    gpu::KernelDesc desc;
    desc.name = "k";
    desc.duration = SimTime::ms(1);
    auto plan = makeUniformPlan({0, 64 << 20}, 0, 64, 256);
    rig.runtime.attachMessagePlan(desc, 0, std::move(plan), nullptr, agg);
    rig.system.launchKernel(0, desc);
    rig.system.syncAll();
    return rig.system.stream(0).lastCompletion();
  };

  AggregatorParams params;
  params.aggregation_bytes = 128 * 1024;
  const SimTime raw = run(nullptr);
  const SimTime aggregated = run(&params);
  // 256 K messages at 10 M msg/s = 26 ms un-aggregated; aggregation
  // collapses that to ~bandwidth time.
  EXPECT_LT(aggregated, raw / 4);
}

TEST(AggregatorTest, InvalidParamsThrow) {
  const auto plan = makeUniformPlan({0, 100}, 0, 2, 256);
  AggregatorParams params;
  params.aggregation_bytes = 0;
  EXPECT_THROW(aggregatePlan(plan, SimTime::ms(1), params),
               InvalidArgumentError);
}

// --- Symmetric heap lifetime -------------------------------------------------

TEST(SymmetricHeapTest, FreeReleasesEveryPartitionAndInvalidates) {
  Rig rig(2);
  const auto used0 = rig.system.device(0).memoryUsedBytes();
  const auto used1 = rig.system.device(1).memoryUsedBytes();
  auto buf = rig.runtime.heap().alloc(256);
  EXPECT_TRUE(buf.valid());
  EXPECT_EQ(buf.numPes(), 2);
  EXPECT_EQ(buf.sizePerPe(), 256);
  EXPECT_EQ(rig.system.device(0).memoryUsedBytes(), used0 + 256 * 4);
  EXPECT_EQ(rig.system.device(1).memoryUsedBytes(), used1 + 256 * 4);
  rig.runtime.heap().free(buf);
  EXPECT_FALSE(buf.valid());
  EXPECT_EQ(buf.numPes(), 0);
  EXPECT_EQ(rig.system.device(0).memoryUsedBytes(), used0);
  EXPECT_EQ(rig.system.device(1).memoryUsedBytes(), used1);
}

TEST(SymmetricHeapTest, FreedHeapSpaceIsReusedSymmetrically) {
  Rig rig(2);
  auto a = rig.runtime.heap().alloc(128);
  const auto offset = a.on(0).offset();
  EXPECT_EQ(a.on(1).offset(), offset);  // symmetric address on every PE
  rig.runtime.heap().free(a);
  auto b = rig.runtime.heap().alloc(128);
  EXPECT_EQ(b.on(0).offset(), offset);
  EXPECT_EQ(b.on(1).offset(), offset);
  rig.runtime.heap().free(b);
}

TEST(SymmetricBufferTest, InvalidPeThrows) {
  Rig rig(2);
  auto buf = rig.runtime.heap().alloc(16);
  EXPECT_THROW(buf.on(-1), InvalidArgumentError);
  EXPECT_THROW(buf.on(2), InvalidArgumentError);
  const auto& cbuf = buf;
  EXPECT_THROW(cbuf.on(2), InvalidArgumentError);
  rig.runtime.heap().free(buf);
  SymmetricBuffer empty;
  EXPECT_FALSE(empty.valid());
  EXPECT_THROW(empty.on(0), InvalidArgumentError);
}

}  // namespace
}  // namespace pgasemb::pgas

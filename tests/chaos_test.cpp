// Seeded chaos suite (DESIGN.md §13): randomized FaultPlans over the
// full grammar — link/NIC degradation, flaps, stragglers, launch
// failures, leader failures — crossed with every retriever and node
// count. The plans are drawn from a fixed seed, so a failure here is a
// deterministic repro, not flake.
//
// Invariants checked for every (plan, retriever, nodes) cell:
//   - no hang / no throw: the run completes all scheduled batches;
//   - counter conservation: every dropped flow is accounted for by
//     exactly one retransmit or one collective reissue;
//   - determinism: re-running the identical config reproduces the
//     simulated totals and every resilience counter bit-for-bit;
//   - Functional mode stays bit-exact against the serial reference,
//     faults or not (timing faults must never corrupt payloads).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/retriever.hpp"
#include "engine/batch_executor.hpp"
#include "engine/scenario_runner.hpp"
#include "fault/plan.hpp"
#include "util/rng.hpp"

namespace pgasemb::engine {
namespace {

const std::vector<std::string> kRetrievers = {
    "nccl_collective", "pgas_fused", "nccl_pipelined"};

/// The IB-like inter-node links every multi-node bench pins.
void applyInterNodeLink(ExperimentConfig& cfg, int nodes) {
  cfg.num_nodes = nodes;
  cfg.inter_node_link.bandwidth_bytes_per_sec = 25e9;
  cfg.inter_node_link.latency = SimTime::us(5.0);
  cfg.inter_node_link.header_bytes = 64;
  cfg.inter_node_link.max_messages_per_sec = 10e6;
}

/// One random spec token. Node-scoped kinds only appear when the
/// layout actually has multiple nodes (validate() rejects them
/// otherwise). Windows are left seeded: parse() draws them inside the
/// horizon and clamps flap widths to the retry budget, which keeps
/// every generated plan runnable by construction.
std::string randomSpecToken(Rng& rng, int nodes, int gpus) {
  const auto gpu_or_star = [&]() {
    return rng.uniformDouble() < 0.3
               ? std::string("*")
               : std::to_string(rng.uniformInt(0, gpus - 1));
  };
  const auto node_id = [&]() {
    return std::to_string(rng.uniformInt(0, nodes - 1));
  };
  const int kinds = nodes > 1 ? 9 : 5;
  switch (rng.uniformInt(0, kinds - 1)) {
    case 0:
      return "link-degrade:" + gpu_or_star() + "-*:" +
             std::to_string(0.3 + 0.6 * rng.uniformDouble());
    case 1:
      return "latency-spike:*-" + gpu_or_star() + ":" +
             std::to_string(rng.uniformInt(5, 50));
    case 2:
      return "link-flap:" + gpu_or_star() + "-*";
    case 3:
      return "straggler:" + std::to_string(rng.uniformInt(0, gpus - 1)) +
             ":" + std::to_string(1.0 + 2.0 * rng.uniformDouble());
    case 4:
      return "launch-fail:*:" +
             std::to_string(0.05 + 0.3 * rng.uniformDouble());
    case 5:
      return "nic-degrade:" + node_id() + ":" +
             std::to_string(0.3 + 0.6 * rng.uniformDouble());
    case 6:
      return "nic-flap:" + node_id();
    case 7:
      return "leader-fail:" + node_id();
    default:
      return "node-straggle:" + node_id() + ":" +
             std::to_string(1.0 + 2.0 * rng.uniformDouble());
  }
}

std::string randomPlan(Rng& rng, int nodes, int gpus) {
  const int n = static_cast<int>(rng.uniformInt(1, 3));
  std::string plan;
  for (int i = 0; i < n; ++i) {
    if (i > 0) plan += ",";
    plan += randomSpecToken(rng, nodes, gpus);
  }
  return plan;
}

ExperimentConfig chaosConfig(int nodes, const std::string& spec,
                             std::uint64_t seed) {
  const int gpus = 2 * nodes;
  ExperimentConfig cfg = weakScalingConfig(gpus);
  cfg.num_batches = 2;
  if (nodes > 1) {
    cfg.layer = emb::multinodeServingLayerSpec(gpus);
    applyInterNodeLink(cfg, nodes);
    cfg.hierarchical_a2a = true;
  }
  cfg.faults = fault::FaultPlan::parse(spec, seed);
  return cfg;
}

void expectConserved(const ExperimentResult& r, const std::string& what) {
  ASSERT_TRUE(r.resilience.has_value()) << what;
  const auto& rs = *r.resilience;
  EXPECT_EQ(rs.dropped_flows, rs.retransmits + rs.collective_reissues)
      << what << ": every dropped flow needs exactly one recovery";
  EXPECT_GE(rs.recovery_latency, SimTime::zero()) << what;
}

TEST(ChaosTest, RandomPlansCompleteConserveAndRepeatAcrossNodeCounts) {
  Rng rng(0xc4405);
  for (const int nodes : {1, 2, 4}) {
    for (int trial = 0; trial < 5; ++trial) {
      const std::uint64_t seed = 1000 + 10 * nodes + trial;
      const std::string plan = randomPlan(rng, nodes, 2 * nodes);
      const ExperimentConfig cfg = chaosConfig(nodes, plan, seed);
      for (const auto& name : kRetrievers) {
        const std::string what = name + " nodes=" + std::to_string(nodes) +
                                 " plan='" + plan + "'";
        const ExperimentResult a = ScenarioRunner(cfg).run(name);
        EXPECT_EQ(a.stats.batches, cfg.num_batches) << what;
        EXPECT_GT(a.stats.total, SimTime::zero()) << what;
        expectConserved(a, what);
        // Determinism: the identical config replays bit-for-bit.
        const ExperimentResult b = ScenarioRunner(cfg).run(name);
        EXPECT_EQ(a.stats.total, b.stats.total) << what;
        ASSERT_TRUE(b.resilience.has_value()) << what;
        const auto& ra = *a.resilience;
        const auto& rb = *b.resilience;
        EXPECT_EQ(ra.faults_injected, rb.faults_injected) << what;
        EXPECT_EQ(ra.dropped_flows, rb.dropped_flows) << what;
        EXPECT_EQ(ra.retransmits, rb.retransmits) << what;
        EXPECT_EQ(ra.collective_reissues, rb.collective_reissues) << what;
        EXPECT_EQ(ra.launch_retries, rb.launch_retries) << what;
        EXPECT_EQ(ra.hier_fallbacks, rb.hier_fallbacks) << what;
        EXPECT_EQ(ra.leader_failovers, rb.leader_failovers) << what;
        EXPECT_EQ(ra.staging_rebuilds, rb.staging_rebuilds) << what;
        EXPECT_EQ(ra.recovery_latency, rb.recovery_latency) << what;
        EXPECT_EQ(ra.degraded_time, rb.degraded_time) << what;
      }
    }
  }
}

/// Small layer with real weights for the bit-exactness leg.
ExperimentConfig functionalChaosConfig(int nodes, const std::string& spec,
                                       std::uint64_t seed) {
  ExperimentConfig cfg = chaosConfig(nodes, spec, seed);
  cfg.layer.total_tables = 8;
  cfg.layer.rows_per_table = 4096;
  cfg.layer.dim = 32;
  cfg.layer.batch_size = 64;
  cfg.layer.min_pooling = 1;
  cfg.layer.max_pooling = 8;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  return cfg;
}

TEST(ChaosTest, FunctionalOutputsStayBitExactUnderRandomFaults) {
  // Timing faults reshape schedules, retries, and routing — never
  // payloads. Outputs must match the serial reference exactly.
  Rng rng(0xfacade);
  for (const int nodes : {1, 2}) {
    for (int trial = 0; trial < 3; ++trial) {
      const std::uint64_t seed = 2000 + 10 * nodes + trial;
      const std::string plan = randomPlan(rng, nodes, 2 * nodes);
      const ExperimentConfig cfg = functionalChaosConfig(nodes, plan, seed);
      // nccl_pipelined is timing-only; the two functional retrievers
      // cover both the collective and the PGAS data paths.
      for (const std::string name : {"nccl_collective", "pgas_fused"}) {
        const std::string what = name + " nodes=" + std::to_string(nodes) +
                                 " plan='" + plan + "'";
        SystemBuilder builder(cfg);
        auto retriever = core::RetrieverRegistry::instance().create(
            name, builder.context());
        Rng batch_rng(cfg.batch_seed);
        for (int b = 0; b < cfg.num_batches; ++b) {
          const auto batch = emb::SparseBatch::generateUniform(
              cfg.layer.batchSpec(), batch_rng);
          retriever->runBatch(batch);
          retriever->finish();
          for (int g = 0; g < cfg.num_gpus; ++g) {
            const auto n =
                builder.layer().sharding().outputElements(g, cfg.layer.dim);
            const auto ref = builder.layer().referenceOutput(batch, g);
            const auto s = retriever->output(g).span();
            const std::vector<float> out(s.begin(), s.begin() + n);
            EXPECT_EQ(out, ref)
                << what << " batch " << b << " gpu " << g;
          }
        }
      }
    }
  }
}

TEST(ChaosTest, AcceptanceLeaderFailPlusNicFlapAtFourNodesByFourGpus) {
  // ISSUE 10 acceptance scenario: a seeded leader-fail + nic-flap plan
  // at 4 nodes x 4 GPUs. Every retriever completes, counters conserve,
  // the collective path observes the failover + staging rebuild and
  // recovers its flap drops, and Functional outputs stay bit-exact.
  const int nodes = 4;
  const int gpus = 16;
  const auto assemble = [&](const std::string& spec, std::uint64_t seed) {
    ExperimentConfig cfg = weakScalingConfig(gpus);
    cfg.layer = emb::multinodeServingLayerSpec(gpus);
    cfg.num_batches = 2;
    applyInterNodeLink(cfg, nodes);
    cfg.hierarchical_a2a = true;
    if (!spec.empty()) cfg.faults = fault::FaultPlan::parse(spec, seed);
    return cfg;
  };
  // Calibrate the flap window off a clean run so it provably overlaps
  // the faulted runs' communication phases (a pinned window also keeps
  // this test independent of the seeded-window draw).
  const ExperimentResult base =
      ScenarioRunner(assemble("", 7)).run("nccl_collective");
  const double batch_ms =
      base.stats.total.toMs() / static_cast<double>(base.stats.batches);
  char spec[192];
  std::snprintf(spec, sizeof spec,
                "leader-fail:0:0.0-1000000.0,nic-flap:1:%.3f-%.3f,"
                "nic-degrade:2:0.3:0.0-1000000.0",
                0.2 * batch_ms, 1.0 * batch_ms);

  for (const auto& name : kRetrievers) {
    const ExperimentConfig cfg = assemble(spec, 7);
    const ExperimentResult r = ScenarioRunner(cfg).run(name);
    EXPECT_EQ(r.stats.batches, cfg.num_batches) << name;
    expectConserved(r, name);
    ASSERT_TRUE(r.resilience.has_value()) << name;
    EXPECT_EQ(r.resilience->leader_failovers, 1) << name;
    if (name == "nccl_collective") {
      EXPECT_EQ(r.resilience->staging_rebuilds, 1) << name;
      EXPECT_GT(r.resilience->dropped_flows, 0) << name;
      EXPECT_GT(r.resilience->hier_fallbacks, 0) << name;
      EXPECT_GT(r.resilience->degraded_time, SimTime::zero()) << name;
    }
  }

  // Functional bit-exactness under the same plan (small real-weight
  // layer; nccl_pipelined is timing-only).
  ExperimentConfig fcfg = assemble(spec, 7);
  fcfg.layer.total_tables = 32;
  fcfg.layer.rows_per_table = 4096;
  fcfg.layer.dim = 32;
  fcfg.layer.batch_size = 64;
  fcfg.layer.min_pooling = 1;
  fcfg.layer.max_pooling = 8;
  fcfg.mode = gpu::ExecutionMode::kFunctional;
  for (const std::string name : {"nccl_collective", "pgas_fused"}) {
    SystemBuilder builder(fcfg);
    auto retriever =
        core::RetrieverRegistry::instance().create(name, builder.context());
    Rng batch_rng(fcfg.batch_seed);
    for (int b = 0; b < fcfg.num_batches; ++b) {
      const auto batch = emb::SparseBatch::generateUniform(
          fcfg.layer.batchSpec(), batch_rng);
      retriever->runBatch(batch);
      retriever->finish();
      for (int g = 0; g < gpus; ++g) {
        const auto n =
            builder.layer().sharding().outputElements(g, fcfg.layer.dim);
        const auto ref = builder.layer().referenceOutput(batch, g);
        const auto s = retriever->output(g).span();
        const std::vector<float> out(s.begin(), s.begin() + n);
        EXPECT_EQ(out, ref) << name << " batch " << b << " gpu " << g;
      }
    }
  }
}

}  // namespace
}  // namespace pgasemb::engine

// Integration + property tests for the retrievers — the heart of the
// reproduction:
//
//  * FUNCTIONAL EQUIVALENCE: for any (gpus, tables, batch, dim, pooling,
//    seed), the PGAS fused retriever, the collective baseline, and the
//    serial reference produce bit-identical output tensors.
//  * TIMING SHAPE: the baseline pays separable comm + sync/unpack phases
//    while PGAS hides communication inside compute (paper §IV).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "emb/workload.hpp"
#include "util/expect.hpp"

namespace pgasemb::core {
namespace {

struct Rig {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  pgas::PgasRuntime runtime;

  Rig(int gpus, gpu::ExecutionMode mode)
      : system(makeConfig(gpus, mode)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric),
        runtime(system, fabric) {}

  static gpu::SystemConfig makeConfig(int gpus, gpu::ExecutionMode mode) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 1 << 30;
    cfg.mode = mode;
    return cfg;
  }
};

std::vector<float> snapshot(gpu::DeviceBuffer& buf, std::int64_t n) {
  const auto s = buf.span();
  return std::vector<float>(s.begin(), s.begin() + n);
}

// --- Functional equivalence: parameterized property sweep --------------------

using EquivParams = std::tuple<int /*gpus*/, int /*tables*/, int /*batch*/,
                               int /*dim*/, int /*max_pool*/,
                               std::uint64_t /*seed*/>;

class RetrieverEquivalence : public ::testing::TestWithParam<EquivParams> {};

TEST_P(RetrieverEquivalence, PgasEqualsBaselineEqualsReference) {
  const auto [gpus, tables, batch_size, dim, max_pool, seed] = GetParam();
  Rig rig(gpus, gpu::ExecutionMode::kFunctional);

  emb::EmbLayerSpec spec;
  spec.total_tables = tables;
  spec.rows_per_table = 64;
  spec.dim = dim;
  spec.batch_size = batch_size;
  spec.min_pooling = 0;  // include NULL inputs
  spec.max_pooling = max_pool;
  spec.seed = seed;
  spec.index_space = 1u << 18;
  emb::ShardedEmbeddingLayer layer(rig.system, spec);

  CollectiveRetriever baseline(layer, rig.comm);
  PgasRetrieverOptions opts;
  opts.slices = 4;
  PgasFusedRetriever pgas(layer, rig.runtime, opts);

  Rng rng(seed ^ 0x1234);
  const auto batch =
      emb::SparseBatch::generateUniform(spec.batchSpec(), rng);

  baseline.runBatch(batch);
  pgas.runBatch(batch);

  for (int g = 0; g < gpus; ++g) {
    const auto n = layer.sharding().outputElements(g, dim);
    const auto ref = layer.referenceOutput(batch, g);
    const auto out_base = snapshot(baseline.output(g), n);
    const auto out_pgas = snapshot(pgas.output(g), n);
    ASSERT_EQ(static_cast<std::int64_t>(ref.size()), n);
    EXPECT_EQ(out_base, ref) << "baseline mismatch on gpu " << g;
    EXPECT_EQ(out_pgas, ref) << "pgas mismatch on gpu " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RetrieverEquivalence,
    ::testing::Values(
        EquivParams{1, 3, 8, 4, 3, 0xa1},
        EquivParams{2, 4, 8, 4, 3, 0xa2},
        EquivParams{2, 5, 9, 8, 5, 0xa3},   // ragged tables + batch
        EquivParams{3, 7, 11, 4, 4, 0xa4},  // everything ragged
        EquivParams{4, 8, 16, 8, 6, 0xa5},
        EquivParams{4, 9, 18, 2, 1, 0xa6},  // tiny dim, pooling <= 1
        EquivParams{4, 16, 32, 16, 8, 0xa7},
        EquivParams{2, 2, 64, 4, 12, 0xa8},  // deep pooling
        EquivParams{3, 12, 12, 4, 0, 0xa9},  // all-NULL inputs
        EquivParams{4, 4, 16, 32, 5, 0xaa},
        EquivParams{2, 6, 10, 4, 7, 0xab},
        EquivParams{3, 3, 27, 8, 2, 0xac},   // fewer tables than... 3 tables over 3 gpus
        EquivParams{4, 32, 64, 4, 4, 0xad},  // many small tables
        EquivParams{2, 4, 8, 64, 3, 0xae},   // paper-like dim 64
        EquivParams{3, 5, 16, 8, 9, 0xaf},
        EquivParams{4, 10, 20, 4, 2, 0xb1}));

// Skew + balanced-boundary variants of the same property.
using SkewParams = std::tuple<int /*gpus*/, bool /*balance*/,
                              std::uint64_t /*seed*/>;
class SkewedEquivalence : public ::testing::TestWithParam<SkewParams> {};

TEST_P(SkewedEquivalence, PgasEqualsBaselineEqualsReference) {
  const auto [gpus, balance, seed] = GetParam();
  Rig rig(gpus, gpu::ExecutionMode::kFunctional);
  emb::EmbLayerSpec spec;
  spec.total_tables = 4 * gpus;
  spec.rows_per_table = 64;
  spec.dim = 8;
  spec.batch_size = 4 * gpus + 3;  // ragged mini-batches
  spec.min_pooling = 0;
  spec.seed = seed;
  spec.index_space = 1u << 16;
  Rng skew_rng(seed ^ 0x77);
  for (std::int64_t t = 0; t < spec.total_tables; ++t) {
    spec.table_max_pooling.push_back(
        static_cast<int>(skew_rng.uniformInt(1, 16)));
  }
  spec.balance_tables = balance;
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  CollectiveRetriever baseline(layer, rig.comm);
  PgasFusedRetriever pgas(layer, rig.runtime, {});
  Rng rng(seed ^ 0x88);
  const auto batch =
      emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
  baseline.runBatch(batch);
  pgas.runBatch(batch);
  for (int g = 0; g < gpus; ++g) {
    const auto n = layer.sharding().outputElements(g, spec.dim);
    const auto ref = layer.referenceOutput(batch, g);
    EXPECT_EQ(snapshot(baseline.output(g), n), ref) << "baseline gpu " << g;
    EXPECT_EQ(snapshot(pgas.output(g), n), ref) << "pgas gpu " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkewedEquivalence,
    ::testing::Values(SkewParams{2, false, 0xc1}, SkewParams{2, true, 0xc2},
                      SkewParams{3, false, 0xc3}, SkewParams{3, true, 0xc4},
                      SkewParams{4, false, 0xc5}, SkewParams{4, true, 0xc6}));

// --- Row-wise sharding functional path -----------------------------------------

TEST(RowWiseTest, FusedRowWiseMatchesReference) {
  Rig rig(3, gpu::ExecutionMode::kFunctional);
  emb::EmbLayerSpec spec;
  spec.total_tables = 5;
  spec.rows_per_table = 50;
  spec.dim = 4;
  spec.batch_size = 9;
  spec.min_pooling = 0;
  spec.max_pooling = 4;
  spec.seed = 0xb0;
  spec.index_space = 1u << 16;
  emb::ShardedEmbeddingLayer layer(rig.system, spec,
                                   emb::ShardingScheme::kRowWise);
  PgasRetrieverOptions opts;
  opts.slices = 2;
  PgasFusedRetriever pgas(layer, rig.runtime, opts);
  Rng rng(0xb1);
  const auto batch =
      emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
  pgas.runBatch(batch);
  for (int g = 0; g < 3; ++g) {
    const auto n = layer.sharding().outputElements(g, spec.dim);
    const auto ref = layer.referenceOutput(batch, g);
    const auto out = snapshot(pgas.output(g), n);
    for (std::int64_t i = 0; i < n; ++i) {
      EXPECT_NEAR(out[static_cast<std::size_t>(i)],
                  ref[static_cast<std::size_t>(i)], 1e-4f)
          << "gpu " << g << " elem " << i;
    }
  }
}

TEST(RowWiseTest, RepeatedBatchesDoNotAccumulateStaleSums) {
  Rig rig(2, gpu::ExecutionMode::kFunctional);
  emb::EmbLayerSpec spec;
  spec.total_tables = 2;
  spec.rows_per_table = 20;
  spec.dim = 4;
  spec.batch_size = 4;
  spec.min_pooling = 1;
  spec.max_pooling = 2;
  spec.seed = 0xb2;
  spec.index_space = 1u << 10;
  emb::ShardedEmbeddingLayer layer(rig.system, spec,
                                   emb::ShardingScheme::kRowWise);
  PgasFusedRetriever pgas(layer, rig.runtime, {});
  Rng rng(0xb3);
  const auto batch =
      emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
  pgas.runBatch(batch);
  const auto first = snapshot(pgas.output(0),
                              layer.sharding().outputElements(0, spec.dim));
  pgas.runBatch(batch);  // same batch again: outputs must be identical
  const auto second = snapshot(pgas.output(0),
                               layer.sharding().outputElements(0, spec.dim));
  EXPECT_EQ(first, second);
}

TEST(RowWiseTest, BaselineRejectsRowWise) {
  Rig rig(2, gpu::ExecutionMode::kFunctional);
  emb::EmbLayerSpec spec = emb::tinyLayerSpec();
  emb::ShardedEmbeddingLayer layer(rig.system, spec,
                                   emb::ShardingScheme::kRowWise);
  EXPECT_THROW(CollectiveRetriever(layer, rig.comm), InvalidArgumentError);
}

// --- Timing shapes -------------------------------------------------------------

emb::EmbLayerSpec timingSpec(int gpus) {
  emb::EmbLayerSpec spec;
  spec.total_tables = 8LL * gpus;
  spec.rows_per_table = 100000;
  spec.dim = 64;
  spec.batch_size = 4096;
  spec.min_pooling = 1;
  spec.max_pooling = 64;
  spec.seed = 0xc0;
  return spec;
}

TEST(TimingTest, BaselineHasThreePhases) {
  Rig rig(2, gpu::ExecutionMode::kTimingOnly);
  emb::ShardedEmbeddingLayer layer(rig.system, timingSpec(2));
  CollectiveRetriever baseline(layer, rig.comm);
  const auto batch =
      emb::SparseBatch::statistical(timingSpec(2).batchSpec());
  const auto t = baseline.runBatch(batch);
  EXPECT_GT(t.compute_phase, SimTime::zero());
  EXPECT_GT(t.comm_phase, SimTime::zero());
  EXPECT_GT(t.unpack_phase, SimTime::zero());
  EXPECT_GT(t.wire_time, SimTime::zero());
  EXPECT_LT(t.wire_time, t.comm_phase);
  EXPECT_EQ(t.total, t.compute_phase + t.comm_phase + t.unpack_phase);
  // Paper-style 3-way split is consistent.
  EXPECT_EQ(t.compute_phase + t.communication() + t.syncUnpack(), t.total);
}

TEST(TimingTest, PgasIsSinglePhaseAndFasterThanBaseline) {
  Rig rig(2, gpu::ExecutionMode::kTimingOnly);
  emb::ShardedEmbeddingLayer layer(rig.system, timingSpec(2));
  CollectiveRetriever baseline(layer, rig.comm);
  PgasFusedRetriever pgas(layer, rig.runtime, {});
  const auto batch =
      emb::SparseBatch::statistical(timingSpec(2).batchSpec());
  const auto tb = baseline.runBatch(batch);
  const auto tp = pgas.runBatch(batch);
  EXPECT_EQ(tp.total, tp.compute_phase);
  EXPECT_EQ(tp.comm_phase, SimTime::zero());
  EXPECT_LT(tp.total, tb.total);
}

TEST(TimingTest, SingleGpuSchemesAreIdentical) {
  Rig rig(1, gpu::ExecutionMode::kTimingOnly);
  emb::ShardedEmbeddingLayer layer(rig.system, timingSpec(1));
  CollectiveRetriever baseline(layer, rig.comm);
  PgasFusedRetriever pgas(layer, rig.runtime, {});
  const auto batch =
      emb::SparseBatch::statistical(timingSpec(1).batchSpec());
  const auto tb = baseline.runBatch(batch);
  const auto tp = pgas.runBatch(batch);
  EXPECT_EQ(tb.total, tp.total);
  EXPECT_EQ(tb.comm_phase, SimTime::zero());
}

TEST(TimingTest, PgasCommIsOnTheWireDuringCompute) {
  Rig rig(2, gpu::ExecutionMode::kTimingOnly);
  emb::ShardedEmbeddingLayer layer(rig.system, timingSpec(2));
  PgasFusedRetriever pgas(layer, rig.runtime, {});
  const auto batch =
      emb::SparseBatch::statistical(timingSpec(2).batchSpec());
  pgas.runBatch(batch);
  // Injection counter must show traffic in many buckets, not one spike.
  const auto& c = rig.fabric.injectionCounter();
  int nonzero = 0;
  for (std::size_t i = 0; i < c.numBuckets(); ++i) {
    if (c.bucket(i) > 0.0) ++nonzero;
  }
  EXPECT_GE(nonzero, 16);
}

TEST(TimingTest, SchemesMoveSameWireVolume) {
  // Same payload crosses the fabric either way — PGAS just times it
  // differently (no unpack, overlapped).
  for (const bool use_pgas : {false, true}) {
    Rig rig(4, gpu::ExecutionMode::kTimingOnly);
    emb::ShardedEmbeddingLayer layer(rig.system, timingSpec(4));
    const auto batch =
        emb::SparseBatch::statistical(timingSpec(4).batchSpec());
    std::int64_t expected = 0;
    for (int g = 0; g < 4; ++g) {
      expected += layer.lookupWork(batch, g).remoteOutputs(g) * 64 * 4;
    }
    if (use_pgas) {
      PgasFusedRetriever pgas(layer, rig.runtime, {});
      pgas.runBatch(batch);
    } else {
      CollectiveRetriever baseline(layer, rig.comm);
      baseline.runBatch(batch);
    }
    EXPECT_EQ(rig.fabric.totalPayloadBytes(), expected);
  }
}

TEST(TimingTest, RetrieverStatsAccumulate) {
  RetrieverStats stats;
  BatchTiming t;
  t.total = SimTime::ms(2);
  t.compute_phase = SimTime::ms(1);
  t.comm_phase = SimTime::ms(0.6);
  t.unpack_phase = SimTime::ms(0.4);
  t.wire_time = SimTime::ms(0.5);
  stats.add(t);
  stats.add(t);
  EXPECT_EQ(stats.batches, 2);
  EXPECT_EQ(stats.total, SimTime::ms(4));
  EXPECT_EQ(stats.communication(), SimTime::ms(1));
  EXPECT_EQ(stats.syncUnpack(), SimTime::ms(1));
}

TEST(MemoryTest, RetrieverBuffersFitAccounting) {
  Rig rig(2, gpu::ExecutionMode::kTimingOnly);
  auto spec = timingSpec(2);
  emb::ShardedEmbeddingLayer layer(rig.system, spec);
  const std::int64_t tables_only = rig.system.device(0).memoryUsedBytes();
  {
    CollectiveRetriever baseline(layer, rig.comm);
    EXPECT_GT(rig.system.device(0).memoryUsedBytes(), tables_only);
  }
  EXPECT_EQ(rig.system.device(0).memoryUsedBytes(), tables_only);
}

TEST(MemoryTest, PaperScaleTablesExceedSingleGpuAtWeak4) {
  // The paper's motivation: 4 GPUs' worth of weak-scaling tables
  // (4 x 16 GiB) cannot fit one 32 GiB V100.
  Rig rig(1, gpu::ExecutionMode::kTimingOnly);
  emb::EmbLayerSpec spec = emb::weakScalingLayerSpec(4);
  gpu::SystemConfig cfg = Rig::makeConfig(1, gpu::ExecutionMode::kTimingOnly);
  cfg.memory_capacity_bytes = 32LL << 30;
  gpu::MultiGpuSystem one(cfg);
  EXPECT_THROW(emb::ShardedEmbeddingLayer(one, spec), OutOfMemoryError);
}

}  // namespace
}  // namespace pgasemb::core

// Unit tests for the embedding-table library: hashing, sparse batches,
// tables (dense vs procedural equivalence), sharding math, layer
// reference semantics, and kernel workload descriptors.
#include <gtest/gtest.h>

#include "emb/hashing.hpp"
#include "emb/layer.hpp"
#include "emb/lookup_kernel.hpp"
#include "emb/sharding.hpp"
#include "emb/sparse_batch.hpp"
#include "emb/table.hpp"
#include "emb/unpack_kernel.hpp"
#include "emb/workload.hpp"
#include "util/expect.hpp"

namespace pgasemb::emb {
namespace {

gpu::SystemConfig funcConfig(int gpus) {
  gpu::SystemConfig cfg;
  cfg.num_gpus = gpus;
  cfg.memory_capacity_bytes = 256 << 20;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  return cfg;
}

// --- Hashing -----------------------------------------------------------------

TEST(HashingTest, InRangeAndDeterministic) {
  const auto seed = tableSeed(1, 2);
  for (std::uint64_t raw = 0; raw < 1000; ++raw) {
    const auto r = hashIndex(raw, seed, 97);
    EXPECT_GE(r, 0);
    EXPECT_LT(r, 97);
    EXPECT_EQ(r, hashIndex(raw, seed, 97));
  }
}

TEST(HashingTest, TablesHashIndependently) {
  const auto s1 = tableSeed(42, 0);
  const auto s2 = tableSeed(42, 1);
  int same = 0;
  for (std::uint64_t raw = 0; raw < 256; ++raw) {
    if (hashIndex(raw, s1, 1 << 20) == hashIndex(raw, s2, 1 << 20)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(HashingTest, HashSpreadsOverRows) {
  const auto seed = tableSeed(7, 7);
  std::vector<int> hits(16, 0);
  for (std::uint64_t raw = 0; raw < 16000; ++raw) {
    ++hits[static_cast<std::size_t>(hashIndex(raw, seed, 16))];
  }
  for (int h : hits) EXPECT_NEAR(h, 1000, 150);
}

TEST(HashingTest, ProceduralWeightsBoundedAndStable) {
  const auto seed = tableSeed(3, 4);
  for (std::int64_t r = 0; r < 100; ++r) {
    for (int c = 0; c < 8; ++c) {
      const float w = proceduralWeight(seed, r, c);
      EXPECT_GE(w, -1.0f);
      EXPECT_LT(w, 1.0f);
      EXPECT_EQ(w, proceduralWeight(seed, r, c));
    }
  }
}

// --- SparseBatch ----------------------------------------------------------------

TEST(SparseBatchTest, GenerateUniformShapes) {
  Rng rng(1);
  SparseBatchSpec spec{4, 10, 1, 5, 1000, {}};
  const auto b = SparseBatch::generateUniform(spec, rng);
  EXPECT_TRUE(b.materialized());
  for (std::int64_t t = 0; t < 4; ++t) {
    const auto offs = b.offsets(t);
    ASSERT_EQ(offs.size(), 11u);
    EXPECT_EQ(offs[0], 0);
    for (std::int64_t s = 0; s < 10; ++s) {
      const auto bag = b.poolingFactor(t, s);
      EXPECT_GE(bag, 1);
      EXPECT_LE(bag, 5);
    }
    EXPECT_EQ(offs[10], b.tableIndexCount(t));
  }
}

TEST(SparseBatchTest, NullInputsAllowed) {
  Rng rng(2);
  SparseBatchSpec spec{2, 400, 0, 1, 1000, {}};
  const auto b = SparseBatch::generateUniform(spec, rng);
  int empties = 0;
  for (std::int64_t s = 0; s < 400; ++s) {
    if (b.poolingFactor(0, s) == 0) ++empties;
  }
  EXPECT_GT(empties, 100);  // ~half expected
}

TEST(SparseBatchTest, StatisticalMatchesExpectation) {
  SparseBatchSpec spec{8, 100, 1, 127, 1000, {}};
  const auto b = SparseBatch::statistical(spec);
  EXPECT_FALSE(b.materialized());
  EXPECT_DOUBLE_EQ(b.totalIndices(0, 8), 8 * 100 * 64.0);
  EXPECT_THROW(b.offsets(0), InvalidArgumentError);
}

TEST(SparseBatchTest, MaterializedCountsAreExact) {
  Rng rng(3);
  SparseBatchSpec spec{3, 50, 2, 2, 1000, {}};  // fixed pooling of 2
  const auto b = SparseBatch::generateUniform(spec, rng);
  EXPECT_DOUBLE_EQ(b.totalIndices(0, 3), 3 * 50 * 2.0);
  EXPECT_DOUBLE_EQ(b.totalIndices(1, 1), 50 * 2.0);
}

TEST(SparseBatchTest, InvalidSpecThrows) {
  Rng rng(4);
  SparseBatchSpec bad{0, 10, 1, 4, 100, {}};
  EXPECT_THROW(SparseBatch::generateUniform(bad, rng),
               InvalidArgumentError);
  SparseBatchSpec bad2{1, 10, 5, 4, 100, {}};  // max < min
  EXPECT_THROW(SparseBatch::statistical(bad2), InvalidArgumentError);
}

// --- EmbeddingTable ---------------------------------------------------------------

TEST(EmbeddingTableTest, DenseAndProceduralAgree) {
  gpu::Device dev(0, 1 << 20, gpu::ExecutionMode::kFunctional);
  const TableConfig cfg{50, 8};
  EmbeddingTable dense(dev, cfg, 123, TableStorage::kDense);
  EmbeddingTable proc(dev, cfg, 123, TableStorage::kProcedural);
  for (std::int64_t r = 0; r < 50; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(dense.weight(r, c), proc.weight(r, c));
    }
  }
  dense.release(dev);
  proc.release(dev);
}

TEST(EmbeddingTableTest, AccumulateRowSums) {
  gpu::Device dev(0, 1 << 20, gpu::ExecutionMode::kFunctional);
  EmbeddingTable t(dev, {10, 4}, 9, TableStorage::kDense);
  std::vector<float> acc(4, 0.0f);
  t.accumulateRow(3, acc);
  t.accumulateRow(3, acc);
  for (int c = 0; c < 4; ++c) {
    EXPECT_FLOAT_EQ(acc[static_cast<std::size_t>(c)], 2 * t.weight(3, c));
  }
  t.release(dev);
}

TEST(EmbeddingTableTest, GradientUpdateChangesDenseWeights) {
  gpu::Device dev(0, 1 << 20, gpu::ExecutionMode::kFunctional);
  EmbeddingTable t(dev, {10, 4}, 9, TableStorage::kDense);
  const float before = t.weight(2, 1);
  const std::vector<float> grad{0.0f, 1.0f, 0.0f, 0.0f};
  t.applyGradient(2, grad, 0.5f);
  EXPECT_FLOAT_EQ(t.weight(2, 1), before - 0.5f);
  t.release(dev);
}

TEST(EmbeddingTableTest, GradientOnProceduralThrows) {
  EmbeddingTable t({10, 4}, 9);
  const std::vector<float> grad(4, 0.0f);
  EXPECT_THROW(t.applyGradient(0, grad, 0.1f), InvalidArgumentError);
}

TEST(EmbeddingTableTest, OutOfRangeAccessThrows) {
  EmbeddingTable t({10, 4}, 9);
  EXPECT_THROW(t.weight(10, 0), InvalidArgumentError);
  EXPECT_THROW(t.weight(0, 4), InvalidArgumentError);
}

// --- Sharding ----------------------------------------------------------------

TEST(BlockPartitionTest, EvenSplit) {
  BlockPartition p(12, 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(p.size(k), 3);
    EXPECT_EQ(p.begin(k), 3 * k);
  }
  EXPECT_EQ(p.ownerOf(0), 0);
  EXPECT_EQ(p.ownerOf(11), 3);
}

TEST(BlockPartitionTest, RaggedSplitCoversAllItems) {
  BlockPartition p(16384, 3);  // the paper's batch over 3 GPUs
  EXPECT_EQ(p.size(0), 5462);
  EXPECT_EQ(p.size(1), 5461);
  EXPECT_EQ(p.size(2), 5461);
  std::int64_t covered = 0;
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(p.begin(k), covered);
    covered += p.size(k);
    EXPECT_EQ(p.end(k), covered);
  }
  EXPECT_EQ(covered, 16384);
}

TEST(BlockPartitionTest, OwnerOfIsConsistentWithRanges) {
  BlockPartition p(100, 7);
  for (std::int64_t i = 0; i < 100; ++i) {
    const int o = p.ownerOf(i);
    EXPECT_GE(i, p.begin(o));
    EXPECT_LT(i, p.end(o));
  }
}

TEST(ShardingTest, TableOwnershipIsBlockwise) {
  Sharding sh(8, 16, 4);
  EXPECT_EQ(sh.tablesOn(0), 2);
  EXPECT_EQ(sh.tableOwner(0), 0);
  EXPECT_EQ(sh.tableOwner(7), 3);
  EXPECT_EQ(sh.firstTableOn(2), 4);
}

TEST(ShardingTest, OutputIndexRoundTrips) {
  Sharding sh(3, 8, 2);
  const int dim = 4;
  // Sample 5 belongs to GPU 1 (mini-batch begins at 4).
  EXPECT_EQ(sh.sampleOwner(5), 1);
  const auto idx = sh.outputIndex(5, 2, 3, dim);
  EXPECT_EQ(idx, ((5 - 4) * 3 + 2) * 4 + 3);
  EXPECT_EQ(sh.outputElements(1, dim), 4 * 3 * 4);
}

// --- Layer + kernels ----------------------------------------------------------

TEST(LayerTest, ReferencePoolingMatchesManualSum) {
  gpu::MultiGpuSystem sys(funcConfig(2));
  auto spec = tinyLayerSpec();
  ShardedEmbeddingLayer layer(sys, spec);
  Rng rng(5);
  const auto batch = SparseBatch::generateUniform(spec.batchSpec(), rng);
  const auto offs = batch.offsets(0);
  const auto idxs = batch.indices(0);
  std::vector<float> expect(static_cast<std::size_t>(spec.dim), 0.0f);
  for (std::int64_t i = offs[0]; i < offs[1]; ++i) {
    const auto row = layer.hashedRow(0, idxs[static_cast<std::size_t>(i)]);
    layer.table(0).accumulateRow(row, expect);
  }
  EXPECT_EQ(layer.pooledValue(batch, 0, 0), expect);
}

TEST(LayerTest, EmptyBagPoolsToZero) {
  gpu::MultiGpuSystem sys(funcConfig(2));
  auto spec = tinyLayerSpec();
  spec.min_pooling = 0;
  spec.max_pooling = 0;  // force all-NULL inputs
  ShardedEmbeddingLayer layer(sys, spec);
  Rng rng(6);
  const auto batch = SparseBatch::generateUniform(spec.batchSpec(), rng);
  for (float v : layer.pooledValue(batch, 0, 0)) EXPECT_EQ(v, 0.0f);
}

TEST(LayerTest, RowWisePartialSumsAddUpToFullPooling) {
  gpu::MultiGpuSystem sys(funcConfig(3));
  auto spec = tinyLayerSpec();
  ShardedEmbeddingLayer layer(sys, spec, ShardingScheme::kRowWise);
  Rng rng(7);
  const auto batch = SparseBatch::generateUniform(spec.batchSpec(), rng);
  for (std::int64_t t = 0; t < spec.total_tables; ++t) {
    for (std::int64_t s = 0; s < spec.batch_size; ++s) {
      const auto full = layer.pooledValue(batch, t, s);
      std::vector<float> sum(static_cast<std::size_t>(spec.dim), 0.0f);
      for (int g = 0; g < 3; ++g) {
        const auto part = layer.partialPooledValue(batch, t, s, g);
        for (int c = 0; c < spec.dim; ++c) {
          sum[static_cast<std::size_t>(c)] +=
              part[static_cast<std::size_t>(c)];
        }
      }
      for (int c = 0; c < spec.dim; ++c) {
        EXPECT_NEAR(sum[static_cast<std::size_t>(c)],
                    full[static_cast<std::size_t>(c)], 1e-4);
      }
    }
  }
}

TEST(LayerTest, LookupWorkMatchesBatchCounts) {
  gpu::MultiGpuSystem sys(funcConfig(2));
  const auto spec = tinyLayerSpec();
  ShardedEmbeddingLayer layer(sys, spec);
  Rng rng(8);
  const auto batch = SparseBatch::generateUniform(spec.batchSpec(), rng);
  const auto work = layer.lookupWork(batch, 0);
  EXPECT_DOUBLE_EQ(work.gathered_rows,
                   batch.totalIndices(0, layer.sharding().tablesOn(0)));
  EXPECT_EQ(work.totalOutputs(),
            layer.sharding().tablesOn(0) * spec.batch_size);
}

TEST(LayerTest, TableMemoryChargedToOwner) {
  gpu::MultiGpuSystem sys(funcConfig(2));
  const auto spec = tinyLayerSpec();
  {
    ShardedEmbeddingLayer layer(sys, spec);
    const std::int64_t per_table = spec.rows_per_table * spec.dim * 4;
    EXPECT_EQ(sys.device(0).memoryUsedBytes(), 4 * per_table);
    EXPECT_EQ(sys.device(1).memoryUsedBytes(), 4 * per_table);
  }
  // Destructor releases the tables.
  EXPECT_EQ(sys.device(0).memoryUsedBytes(), 0);
}

TEST(LayerTest, PaperWeakSpecFitsIn32GB) {
  const auto spec = weakScalingLayerSpec(4);
  // 64 tables/GPU x 1M x 64 x 4B = 16 GiB of tables per GPU.
  EXPECT_EQ(spec.tableBytesPerGpu(4), 64LL * 1000000 * 64 * 4);
  EXPECT_LT(spec.tableBytesPerGpu(4), 32LL << 30);
}

TEST(LayerTest, PaperStrongSpecSizedByOneGpu) {
  const auto spec = strongScalingLayerSpec();
  // 96 x 1M x 64 x 4B ~ 24.6 GB — fits one 32 GB V100, as the paper says
  // the total workload is limited by single-GPU memory.
  EXPECT_LT(spec.tableBytesPerGpu(1), 32LL << 30);
  EXPECT_GT(spec.tableBytesPerGpu(1), 20LL << 30);
}

TEST(KernelTest, SendAndRecvBufferIndicesAreBijective) {
  Sharding sh(6, 9, 3);
  const int dim = 2;
  // Every (gpu, local table, sample, col) maps into [0, elements) and
  // distinct tuples map to distinct offsets.
  for (int g = 0; g < 3; ++g) {
    std::vector<bool> seen(
        static_cast<std::size_t>(sendBufferElements(sh, g, dim)), false);
    for (std::int64_t lt = 0; lt < sh.tablesOn(g); ++lt) {
      for (std::int64_t b = 0; b < 9; ++b) {
        for (int c = 0; c < dim; ++c) {
          const auto idx = sendBufferIndex(sh, g, lt, b, c, dim);
          ASSERT_GE(idx, 0);
          ASSERT_LT(idx, sendBufferElements(sh, g, dim));
          ASSERT_FALSE(seen[static_cast<std::size_t>(idx)]);
          seen[static_cast<std::size_t>(idx)] = true;
        }
      }
    }
  }
  for (int d = 0; d < 3; ++d) {
    std::vector<bool> seen(
        static_cast<std::size_t>(recvBufferElements(sh, d, dim)), false);
    for (int src = 0; src < 3; ++src) {
      for (std::int64_t lt = 0; lt < sh.tablesOn(src); ++lt) {
        for (std::int64_t s = 0; s < sh.miniBatchSize(d); ++s) {
          for (int c = 0; c < dim; ++c) {
            const auto idx = recvBufferIndex(sh, d, src, lt, s, c, dim);
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, recvBufferElements(sh, d, dim));
            ASSERT_FALSE(seen[static_cast<std::size_t>(idx)]);
            seen[static_cast<std::size_t>(idx)] = true;
          }
        }
      }
    }
  }
}

TEST(KernelTest, FusedPlanVolumeMatchesRemoteOutputs) {
  gpu::MultiGpuSystem sys(funcConfig(2));
  const auto spec = tinyLayerSpec();
  ShardedEmbeddingLayer layer(sys, spec);
  Rng rng(9);
  const auto batch = SparseBatch::generateUniform(spec.batchSpec(), rng);
  auto fused = buildFusedLookupKernel(layer, batch, 0, nullptr, 8);
  const auto work = layer.lookupWork(batch, 0);
  EXPECT_EQ(fused.plan.totalPayloadBytes(),
            work.remoteOutputs(0) * spec.dim * 4);
}

TEST(KernelTest, ComputeTimeGrowsWithPooling) {
  // Above the gather-saturation knee, compute time scales with the
  // gathered volume (i.e. with the pooling factor).
  gpu::SystemConfig cfg;
  cfg.num_gpus = 2;
  cfg.memory_capacity_bytes = 64LL << 30;
  cfg.mode = gpu::ExecutionMode::kTimingOnly;
  gpu::MultiGpuSystem sys(cfg);
  auto small = weakScalingLayerSpec(2);
  small.min_pooling = small.max_pooling = 32;
  auto big = weakScalingLayerSpec(2);
  big.min_pooling = big.max_pooling = 128;
  ShardedEmbeddingLayer layer(sys, small);
  const auto b1 = SparseBatch::statistical(small.batchSpec());
  const auto b2 = SparseBatch::statistical(big.batchSpec());
  const auto t1 = lookupComputeTime(layer, layer.lookupWork(b1, 0));
  const auto t2 = lookupComputeTime(layer, layer.lookupWork(b2, 0));
  EXPECT_GT(t2, t1 * 3);
  EXPECT_LT(t2, t1 * 5);
}

}  // namespace
}  // namespace pgasemb::emb

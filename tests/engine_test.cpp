// Tests for the engine layer: the retriever registry, the shared
// finish() lifecycle, SystemBuilder reuse, and — most importantly — the
// golden parity between ScenarioRunner and a hand-assembled system
// running the pre-refactor control flow (the simulation is
// deterministic, so the refactor must be byte-identical).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "core/pipelined_retriever.hpp"
#include "core/registry.hpp"
#include "engine/scenario_runner.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb {
namespace {

engine::ExperimentConfig quickWeak(int gpus, int batches = 3) {
  auto cfg = engine::weakScalingConfig(gpus);
  cfg.num_batches = batches;
  return cfg;
}

TEST(RegistryTest, BuiltinsAreRegistered) {
  auto& reg = core::RetrieverRegistry::instance();
  EXPECT_TRUE(reg.contains("nccl_collective"));
  EXPECT_TRUE(reg.contains("pgas_fused"));
  EXPECT_TRUE(reg.contains("nccl_pipelined"));
  // Historical alias for the collective baseline.
  EXPECT_TRUE(reg.contains("nccl_baseline"));
  const auto names = reg.names();
  // names() lists canonical names only, sorted.
  EXPECT_NE(std::find(names.begin(), names.end(), "nccl_collective"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "pgas_fused"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "nccl_pipelined"),
            names.end());
  EXPECT_EQ(std::find(names.begin(), names.end(), "nccl_baseline"),
            names.end());
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(RegistryTest, CreateRoundTripsEveryBuiltin) {
  engine::SystemBuilder builder(quickWeak(2, 1));
  auto& reg = core::RetrieverRegistry::instance();
  for (const auto& name : reg.names()) {
    builder.reset();
    auto retriever = reg.create(name, builder.context());
    ASSERT_NE(retriever, nullptr) << name;
    EXPECT_EQ(retriever->name(), name);
  }
}

TEST(RegistryTest, UnknownNameThrowsListingKnownNames) {
  engine::SystemBuilder builder(quickWeak(2, 1));
  try {
    core::RetrieverRegistry::instance().create("no_such_scheme",
                                               builder.context());
    FAIL() << "expected InvalidArgumentError";
  } catch (const InvalidArgumentError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no_such_scheme"), std::string::npos);
    EXPECT_NE(what.find("nccl_collective"), std::string::npos);
    EXPECT_NE(what.find("pgas_fused"), std::string::npos);
  }
}

TEST(RegistryTest, CustomFactoryRegistersAndResolves) {
  auto& reg = core::RetrieverRegistry::instance();
  const std::string name = "custom_collective_for_test";
  ASSERT_FALSE(reg.contains(name));
  core::RetrieverRegistrar registrar{
      name, [](const core::SystemContext& ctx)
                -> std::unique_ptr<core::EmbeddingRetriever> {
        return std::make_unique<core::CollectiveRetriever>(ctx.layer,
                                                           ctx.comm);
      }};
  EXPECT_TRUE(reg.contains(name));
  // The registered strategy runs through the full ScenarioRunner path.
  const auto custom = engine::ScenarioRunner(quickWeak(2, 1)).run(name);
  const auto builtin =
      engine::ScenarioRunner(quickWeak(2, 1)).run("nccl_collective");
  EXPECT_EQ(custom.stats.total, builtin.stats.total);
}

TEST(FinishLifecycleTest, DefaultFinishIsZero) {
  engine::SystemBuilder builder(quickWeak(2, 1));
  auto& reg = core::RetrieverRegistry::instance();
  for (const std::string name : {"nccl_collective", "pgas_fused"}) {
    builder.reset();
    auto retriever = reg.create(name, builder.context());
    const auto batch =
        emb::SparseBatch::statistical(builder.config().layer.batchSpec());
    retriever->runBatch(batch);
    core::EmbeddingRetriever& base = *retriever;
    EXPECT_EQ(base.finish(), SimTime::zero()) << name;
  }
}

TEST(FinishLifecycleTest, PipelinedFinishDrainsThroughBaseInterface) {
  engine::SystemBuilder builder(quickWeak(2, 1));
  auto retriever = core::RetrieverRegistry::instance().create(
      "nccl_pipelined", builder.context());
  const auto batch =
      emb::SparseBatch::statistical(builder.config().layer.batchSpec());
  SimTime enqueued = SimTime::zero();
  for (int b = 0; b < 3; ++b) enqueued += retriever->runBatch(batch).total;

  // The pipeline still has batches in flight: finish() must advance the
  // clock past the host-side enqueue time...
  core::EmbeddingRetriever& base = *retriever;
  const SimTime drain = base.finish();
  EXPECT_GT(drain, SimTime::zero());
  EXPECT_EQ(builder.system().hostNow(), enqueued + drain);
  // ...and a second finish() finds nothing left to drain.
  EXPECT_EQ(base.finish(), SimTime::zero());
}

TEST(FinishLifecycleTest, ScenarioRunnerFoldsDrainIntoTotal) {
  const auto cfg = quickWeak(2, 3);
  const auto result = engine::ScenarioRunner(cfg).run("nccl_pipelined");
  engine::SystemBuilder builder(cfg);
  auto retriever = core::RetrieverRegistry::instance().create(
      "nccl_pipelined", builder.context());
  const auto batch = emb::SparseBatch::statistical(cfg.layer.batchSpec());
  for (int b = 0; b < cfg.num_batches; ++b) retriever->runBatch(batch);
  retriever->finish();
  // Runner total == host clock after a manual drain of the same run.
  EXPECT_EQ(result.stats.total, builder.system().hostNow());
}

// Pre-refactor control flow, reassembled by hand: build the full system,
// construct the retriever directly (no registry), run the batch loop.
core::RetrieverStats legacyRun(const engine::ExperimentConfig& config,
                               bool pgas) {
  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = config.num_gpus;
  sys_cfg.memory_capacity_bytes = config.device_memory_bytes;
  sys_cfg.mode = config.mode;
  sys_cfg.cost_model = config.cost_model;
  gpu::MultiGpuSystem system(sys_cfg);
  fabric::Fabric fabric(system.simulator(),
                        std::make_unique<fabric::NvlinkAllToAllTopology>(
                            config.num_gpus, config.link),
                        config.counter_bucket);
  collective::Communicator comm(system, fabric);
  pgas::PgasRuntime runtime(system, fabric);
  emb::ShardedEmbeddingLayer layer(system, config.layer, config.sharding);

  std::unique_ptr<core::EmbeddingRetriever> retriever;
  if (pgas) {
    core::PgasRetrieverOptions opts;
    opts.slices = config.pgas_slices;
    retriever = std::make_unique<core::PgasFusedRetriever>(layer, runtime,
                                                           opts);
  } else {
    retriever = std::make_unique<core::CollectiveRetriever>(layer, comm);
  }

  core::RetrieverStats stats;
  const auto batch = emb::SparseBatch::statistical(config.layer.batchSpec());
  for (int b = 0; b < config.num_batches; ++b) {
    stats.add(retriever->runBatch(batch));
  }
  return stats;
}

TEST(GoldenParityTest, RunnerMatchesManualAssemblyByteForByte) {
  for (const int gpus : {2, 4}) {
    const auto cfg = quickWeak(gpus, 2);
    engine::ScenarioRunner runner(cfg);
    for (const bool pgas : {false, true}) {
      const auto legacy = legacyRun(cfg, pgas);
      const auto result =
          runner.run(pgas ? "pgas_fused" : "nccl_collective");
      const auto& stats = result.stats;
      EXPECT_EQ(stats.batches, legacy.batches) << gpus << " gpus";
      EXPECT_EQ(stats.total, legacy.total) << gpus << " gpus";
      EXPECT_EQ(stats.compute_phase, legacy.compute_phase)
          << gpus << " gpus";
      EXPECT_EQ(stats.comm_phase, legacy.comm_phase) << gpus << " gpus";
      EXPECT_EQ(stats.unpack_phase, legacy.unpack_phase)
          << gpus << " gpus";
      EXPECT_EQ(stats.wire_time, legacy.wire_time) << gpus << " gpus";
    }
  }
}

TEST(SystemBuilderTest, ResetRebuildsOnFreshClock) {
  engine::SystemBuilder builder(quickWeak(2, 1));
  auto retriever = core::RetrieverRegistry::instance().create(
      "nccl_collective", builder.context());
  const auto batch =
      emb::SparseBatch::statistical(builder.config().layer.batchSpec());
  retriever->runBatch(batch);
  EXPECT_GT(builder.system().hostNow(), SimTime::zero());
  retriever.reset();  // a retriever must not outlive the assembly
  builder.reset();
  EXPECT_EQ(builder.system().hostNow(), SimTime::zero());
  EXPECT_EQ(builder.fabric().totalPayloadBytes(), 0);
}

}  // namespace
}  // namespace pgasemb

// Tests for skewed (per-table pooling) workloads and load-balanced
// table sharding: balancer properties, custom-boundary partitions, and
// full functional equivalence of both retrievers under skew + balancing.
#include <gtest/gtest.h>

#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "emb/workload.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/expect.hpp"

namespace pgasemb::emb {
namespace {

// --- Balancer properties -------------------------------------------------------

TEST(BalancerTest, UniformWeightsGiveUniformBlocks) {
  const std::vector<double> w(12, 1.0);
  const auto b = balancedTableBoundaries(w, 4);
  EXPECT_EQ(b, (std::vector<std::int64_t>{0, 3, 6, 9, 12}));
}

TEST(BalancerTest, SkewedWeightsBalanceTheLoad) {
  // One huge table followed by many small ones.
  std::vector<double> w{100.0};
  for (int i = 0; i < 99; ++i) w.push_back(1.0);
  const auto b = balancedTableBoundaries(w, 4);
  ASSERT_EQ(b.size(), 5u);
  // The hot table sits alone (or nearly) in the first block.
  EXPECT_LE(b[1], 2);
  // Every part non-empty and ordered.
  for (std::size_t k = 1; k < b.size(); ++k) EXPECT_GT(b[k], b[k - 1]);
  EXPECT_EQ(b.back(), 100);
  // Load ratio far better than the naive 25-table blocks (whose first
  // block would carry 100 + 24 = 124 of the 199 total).
  double max_load = 0.0, min_load = 1e30;
  for (int part = 0; part < 4; ++part) {
    double load = 0.0;
    for (std::int64_t t = b[static_cast<std::size_t>(part)];
         t < b[static_cast<std::size_t>(part) + 1]; ++t) {
      load += w[static_cast<std::size_t>(t)];
    }
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
  }
  EXPECT_LT(max_load / min_load, 3.5);
  EXPECT_NEAR(max_load, 100.0, 1.0);  // the hot table sits alone
}

TEST(BalancerTest, EveryPartGetsAtLeastOneTable) {
  // Pathological: all weight in the last table.
  std::vector<double> w(8, 0.0);
  w[7] = 100.0;
  const auto b = balancedTableBoundaries(w, 4);
  for (std::size_t k = 1; k < b.size(); ++k) EXPECT_GT(b[k], b[k - 1]);
}

TEST(BalancerTest, RejectsBadInput) {
  EXPECT_THROW(balancedTableBoundaries({1.0}, 2), InvalidArgumentError);
  EXPECT_THROW(balancedTableBoundaries({1.0, -1.0}, 2),
               InvalidArgumentError);
}

TEST(CustomPartitionTest, ExplicitBoundariesRoundTrip) {
  BlockPartition p(std::vector<std::int64_t>{0, 1, 5, 9});
  EXPECT_EQ(p.parts(), 3);
  EXPECT_EQ(p.count(), 9);
  EXPECT_EQ(p.size(0), 1);
  EXPECT_EQ(p.size(1), 4);
  EXPECT_EQ(p.begin(2), 5);
  for (std::int64_t i = 0; i < 9; ++i) {
    const int o = p.ownerOf(i);
    EXPECT_GE(i, p.begin(o));
    EXPECT_LT(i, p.end(o));
  }
}

TEST(CustomPartitionTest, RejectsBadBoundaries) {
  EXPECT_THROW(BlockPartition(std::vector<std::int64_t>{1, 2}),
               InvalidArgumentError);
  EXPECT_THROW(BlockPartition(std::vector<std::int64_t>{0, 3, 2}),
               InvalidArgumentError);
}

// --- Skewed batches -----------------------------------------------------------

TEST(SkewTest, PerTablePoolingHonored) {
  SparseBatchSpec spec;
  spec.num_tables = 3;
  spec.batch_size = 200;
  spec.min_pooling = 1;
  spec.max_pooling = 4;  // ignored when the per-table list is set
  spec.per_table_max_pooling = {1, 8, 64};
  Rng rng(1);
  const auto b = SparseBatch::generateUniform(spec, rng);
  for (std::int64_t s = 0; s < 200; ++s) {
    EXPECT_EQ(b.poolingFactor(0, s), 1);
    EXPECT_LE(b.poolingFactor(1, s), 8);
    EXPECT_LE(b.poolingFactor(2, s), 64);
  }
  // Statistical expectations use the per-table averages.
  const auto stat = SparseBatch::statistical(spec);
  EXPECT_DOUBLE_EQ(stat.totalIndices(0, 1), 200 * 1.0);
  EXPECT_DOUBLE_EQ(stat.totalIndices(2, 1), 200 * 32.5);
}

TEST(SkewTest, MismatchedPerTableListThrows) {
  SparseBatchSpec spec;
  spec.num_tables = 3;
  spec.batch_size = 4;
  spec.per_table_max_pooling = {1, 2};  // wrong arity
  EXPECT_THROW(SparseBatch::statistical(spec), InvalidArgumentError);
}

TEST(SkewTest, BalancedLayerEqualizesLookupWork) {
  gpu::SystemConfig cfg;
  cfg.num_gpus = 4;
  cfg.memory_capacity_bytes = 8LL << 30;
  cfg.mode = gpu::ExecutionMode::kTimingOnly;
  gpu::MultiGpuSystem system(cfg);
  EmbLayerSpec spec;
  spec.total_tables = 32;
  spec.rows_per_table = 1000;
  spec.dim = 16;
  spec.batch_size = 1024;
  spec.min_pooling = 1;
  for (std::int64_t t = 0; t < 32; ++t) {
    spec.table_max_pooling.push_back(t < 4 ? 128 : 4);
  }
  spec.balance_tables = true;
  ShardedEmbeddingLayer layer(system, spec);
  const auto batch = SparseBatch::statistical(spec.batchSpec());
  double max_rows = 0, min_rows = 1e30;
  for (int g = 0; g < 4; ++g) {
    const double rows = layer.lookupWork(batch, g).gathered_rows;
    max_rows = std::max(max_rows, rows);
    min_rows = std::min(min_rows, rows);
  }
  // Contiguous blocks cannot split a hot table, so ~2x is the best
  // achievable here; the naive split is ~4.4x.
  EXPECT_LT(max_rows / min_rows, 2.1);
}

// --- Functional equivalence under skew + balancing ------------------------------

TEST(SkewTest, RetrieversStayEquivalentWithBalancedBoundaries) {
  gpu::SystemConfig cfg;
  cfg.num_gpus = 3;
  cfg.memory_capacity_bytes = 256 << 20;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  gpu::MultiGpuSystem system(cfg);
  fabric::Fabric fabric(system.simulator(),
                        std::make_unique<fabric::NvlinkAllToAllTopology>(
                            3, fabric::LinkParams{}));
  collective::Communicator comm(system, fabric);
  pgas::PgasRuntime runtime(system, fabric);

  EmbLayerSpec spec;
  spec.total_tables = 9;
  spec.rows_per_table = 64;
  spec.dim = 4;
  spec.batch_size = 10;
  spec.min_pooling = 0;
  spec.table_max_pooling = {20, 1, 1, 1, 1, 6, 1, 1, 12};
  spec.balance_tables = true;
  spec.seed = 0x5c3;
  spec.index_space = 1u << 14;
  ShardedEmbeddingLayer layer(system, spec);
  // The balancer must have produced non-uniform blocks.
  EXPECT_NE(layer.sharding().tablesOn(0), layer.sharding().tablesOn(1));

  core::CollectiveRetriever baseline(layer, comm);
  core::PgasFusedRetriever pgas(layer, runtime, {});
  Rng rng(0x5c4);
  const auto batch = SparseBatch::generateUniform(spec.batchSpec(), rng);
  baseline.runBatch(batch);
  pgas.runBatch(batch);
  for (int g = 0; g < 3; ++g) {
    const auto ref = layer.referenceOutput(batch, g);
    const auto n = layer.sharding().outputElements(g, spec.dim);
    const auto a = baseline.output(g).span();
    const auto b = pgas.output(g).span();
    for (std::int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(a[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)])
          << "baseline gpu " << g << " elem " << i;
      ASSERT_EQ(b[static_cast<std::size_t>(i)],
                ref[static_cast<std::size_t>(i)])
          << "pgas gpu " << g << " elem " << i;
    }
  }
}

}  // namespace
}  // namespace pgasemb::emb

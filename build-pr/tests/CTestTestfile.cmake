# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-pr/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-pr/tests/util_test[1]_include.cmake")
include("/root/repo/build-pr/tests/sim_test[1]_include.cmake")
include("/root/repo/build-pr/tests/gpu_test[1]_include.cmake")
include("/root/repo/build-pr/tests/fabric_test[1]_include.cmake")
include("/root/repo/build-pr/tests/collective_test[1]_include.cmake")
include("/root/repo/build-pr/tests/pgas_test[1]_include.cmake")
include("/root/repo/build-pr/tests/emb_test[1]_include.cmake")
include("/root/repo/build-pr/tests/core_test[1]_include.cmake")
include("/root/repo/build-pr/tests/dlrm_test[1]_include.cmake")
include("/root/repo/build-pr/tests/engine_test[1]_include.cmake")
include("/root/repo/build-pr/tests/trace_test[1]_include.cmake")
include("/root/repo/build-pr/tests/trace_extra_test[1]_include.cmake")
include("/root/repo/build-pr/tests/input_partition_test[1]_include.cmake")
include("/root/repo/build-pr/tests/trainer_test[1]_include.cmake")
include("/root/repo/build-pr/tests/skew_test[1]_include.cmake")
include("/root/repo/build-pr/tests/pipelined_test[1]_include.cmake")
include("/root/repo/build-pr/tests/simsan_test[1]_include.cmake")
include("/root/repo/build-pr/tests/cache_test[1]_include.cmake")

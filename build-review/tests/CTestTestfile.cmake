# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-review/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-review/tests/util_test[1]_include.cmake")
include("/root/repo/build-review/tests/sim_test[1]_include.cmake")
include("/root/repo/build-review/tests/gpu_test[1]_include.cmake")
include("/root/repo/build-review/tests/fabric_test[1]_include.cmake")
include("/root/repo/build-review/tests/collective_test[1]_include.cmake")
include("/root/repo/build-review/tests/pgas_test[1]_include.cmake")
include("/root/repo/build-review/tests/emb_test[1]_include.cmake")
include("/root/repo/build-review/tests/core_test[1]_include.cmake")
include("/root/repo/build-review/tests/dlrm_test[1]_include.cmake")
include("/root/repo/build-review/tests/engine_test[1]_include.cmake")
include("/root/repo/build-review/tests/trace_test[1]_include.cmake")
include("/root/repo/build-review/tests/trace_extra_test[1]_include.cmake")
include("/root/repo/build-review/tests/input_partition_test[1]_include.cmake")
include("/root/repo/build-review/tests/trainer_test[1]_include.cmake")
include("/root/repo/build-review/tests/skew_test[1]_include.cmake")
include("/root/repo/build-review/tests/pipelined_test[1]_include.cmake")
include("/root/repo/build-review/tests/simsan_test[1]_include.cmake")

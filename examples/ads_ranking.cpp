// Ads-ranking serving scenario (the paper's motivating workload class:
// "Google advertising ... Facebook for advertisement targeting").
//
// A CTR-ranking service at paper scale: 4 simulated V100s, 256 embedding
// tables of 1M hashed rows, batch 16384, 100 request batches — run in
// TIMING-ONLY mode (the tables alone are 4 x 16 GB, far beyond host
// memory; the cost model runs on workload descriptors).  Reports the
// serving-oriented numbers an inference team would look at: per-batch
// latency distribution and sustained throughput for each retrieval
// backend named in --retrievers.
//
//   $ ./ads_ranking [--gpus 4] [--batches 100]
//                   [--retrievers nccl_collective,nccl_pipelined,pgas_fused]
#include <cstdio>

#include "engine/scenario_runner.hpp"
#include "util/cli.hpp"
#include "util/expect.hpp"
#include "util/stats.hpp"

using namespace pgasemb;

int main(int argc, char** argv) {
  CliParser cli("Paper-scale ads-ranking inference service simulation.");
  cli.addInt("gpus", 4, "number of simulated GPUs");
  cli.addInt("batches", 100, "request batches");
  cli.addString("retrievers", "nccl_collective,pgas_fused",
                "comma-separated retriever names to compare");
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));

  std::vector<std::string> names;
  std::string current;
  for (const char c : cli.getString("retrievers") + ",") {
    if (c == ',') {
      if (!current.empty()) names.push_back(current);
      current.clear();
    } else if (c != ' ') {
      current += c;
    }
  }
  PGASEMB_CHECK(!names.empty(), "--retrievers needs at least one name");

  auto cfg = engine::weakScalingConfig(gpus);
  cfg.num_batches = static_cast<int>(cli.getInt("batches"));

  printf("Ads ranking service: %d GPUs, %lld tables x 1M rows (%.1f GB "
         "of embeddings per GPU), batch %lld\n\n",
         gpus, static_cast<long long>(cfg.layer.total_tables),
         static_cast<double>(cfg.layer.tableBytesPerGpu(gpus)) / 1e9,
         static_cast<long long>(cfg.layer.batch_size));

  engine::ScenarioRunner runner(cfg);
  for (const auto& named : runner.runAll(names)) {
    const auto& r = named.result;
    std::vector<double> lat_ms;
    for (const auto& t : r.per_batch) lat_ms.push_back(t.total.toMs());
    const double avg = r.avgBatchMs();  // includes any pipeline drain
    const double qps =
        static_cast<double>(cfg.layer.batch_size) / (avg / 1e3);
    printf("%-15s EMB-layer latency: avg %.3f ms, p50 %.3f ms, p99 %.3f "
           "ms   ->  %.2f M samples/s\n",
           named.retriever.c_str(), avg, median(lat_ms),
           percentile(lat_ms, 99.0), qps / 1e6);
  }

  printf("\n(the EMB layer dominates DLRM inference — 70%%+ of inference "
         "cycles at Meta [2] — so this latency gap is the serving "
         "capacity gap)\n");
  return 0;
}

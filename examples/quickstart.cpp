// Quickstart: the smallest end-to-end use of the library.
//
// Builds a simulated 2-GPU NVLink system in FUNCTIONAL mode, creates a
// sharded embedding layer, runs one batch through both retrieval
// schemes, and shows (a) that the outputs are identical and (b) the
// simulated-time difference between them.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"

using namespace pgasemb;

int main() {
  // 1. A simulated machine: 2 GPUs, fully connected by NVLink.
  gpu::SystemConfig sys_cfg;
  sys_cfg.num_gpus = 2;
  sys_cfg.memory_capacity_bytes = 1 << 30;
  sys_cfg.mode = gpu::ExecutionMode::kFunctional;  // real data plane
  gpu::MultiGpuSystem system(sys_cfg);

  fabric::Fabric fabric(system.simulator(),
                        std::make_unique<fabric::NvlinkAllToAllTopology>(
                            2, fabric::LinkParams{}));
  collective::Communicator comm(system, fabric);
  pgas::PgasRuntime runtime(system, fabric);

  // 2. An embedding layer: 4 tables x 1000 rows x dim 8, table-wise
  //    sharded (tables 0-1 on GPU 0, tables 2-3 on GPU 1).
  emb::EmbLayerSpec spec;
  spec.total_tables = 4;
  spec.rows_per_table = 1000;
  spec.dim = 8;
  spec.batch_size = 6;
  spec.min_pooling = 1;
  spec.max_pooling = 4;
  spec.seed = 42;
  emb::ShardedEmbeddingLayer layer(system, spec);

  // 3. A batch of sparse inputs (bags of raw indices per table/sample).
  Rng rng(7);
  const auto batch = emb::SparseBatch::generateUniform(spec.batchSpec(), rng);

  // 4. Run both retrieval schemes.
  core::CollectiveRetriever baseline(layer, comm);
  core::PgasFusedRetriever pgas(layer, runtime, {});

  const auto t_base = baseline.runBatch(batch);
  const auto t_pgas = pgas.runBatch(batch);

  printf("NCCL-style baseline: %s  (compute %s + comm %s + sync/unpack %s)\n",
         t_base.total.toString().c_str(),
         t_base.compute_phase.toString().c_str(),
         t_base.communication().toString().c_str(),
         t_base.syncUnpack().toString().c_str());
  printf("PGAS fused:          %s  (single fused phase)\n",
         t_pgas.total.toString().c_str());

  // 5. The outputs are identical — the schemes differ only in when and
  //    how the bytes move.
  bool identical = true;
  for (int g = 0; g < system.numGpus(); ++g) {
    const auto a = baseline.output(g).span();
    const auto b = pgas.output(g).span();
    const auto n = layer.sharding().outputElements(g, spec.dim);
    for (std::int64_t i = 0; i < n; ++i) {
      identical &= (a[static_cast<std::size_t>(i)] ==
                    b[static_cast<std::size_t>(i)]);
    }
  }
  printf("outputs identical across schemes: %s\n",
         identical ? "yes" : "NO (bug!)");

  // Peek at one pooled embedding: sample 0, table 2 lives in GPU 0's
  // mini-batch output.
  const auto out = pgas.output(0).span();
  printf("embedding(sample 0, table 2) = [");
  for (int c = 0; c < spec.dim; ++c) {
    printf("%s%.4f", c ? ", " : "",
           out[static_cast<std::size_t>(
               layer.sharding().outputIndex(0, 2, c, spec.dim))]);
  }
  printf("]\n");
  return identical ? 0 : 1;
}

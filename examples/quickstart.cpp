// Quickstart: the smallest end-to-end use of the library.
//
// Describes a simulated 2-GPU NVLink system in FUNCTIONAL mode with an
// ExperimentConfig, lets engine::SystemBuilder assemble it, creates both
// retrieval schemes by name through the retriever registry, runs one
// batch through each, and shows (a) that the outputs are identical and
// (b) the simulated-time difference between them.
//
//   $ ./quickstart
#include <cstdio>
#include <memory>

#include "engine/system_builder.hpp"

using namespace pgasemb;

int main() {
  // 1. A simulated machine: 2 GPUs, fully connected by NVLink, plus an
  //    embedding layer of 4 tables x 1000 rows x dim 8, table-wise
  //    sharded (tables 0-1 on GPU 0, tables 2-3 on GPU 1).
  engine::ExperimentConfig cfg;
  cfg.num_gpus = 2;
  cfg.device_memory_bytes = 1 << 30;
  cfg.mode = gpu::ExecutionMode::kFunctional;  // real data plane
  cfg.layer.total_tables = 4;
  cfg.layer.rows_per_table = 1000;
  cfg.layer.dim = 8;
  cfg.layer.batch_size = 6;
  cfg.layer.min_pooling = 1;
  cfg.layer.max_pooling = 4;
  cfg.layer.seed = 42;

  engine::SystemBuilder builder(cfg);
  auto& layer = builder.layer();
  const auto& spec = cfg.layer;

  // 2. A batch of sparse inputs (bags of raw indices per table/sample).
  Rng rng(7);
  const auto batch = emb::SparseBatch::generateUniform(spec.batchSpec(), rng);

  // 3. Both retrieval schemes, instantiated by registry name — any
  //    strategy registered with RetrieverRegistry works here.
  auto& registry = core::RetrieverRegistry::instance();
  const auto ctx = builder.context();
  auto baseline = registry.create("nccl_collective", ctx);
  auto pgas = registry.create("pgas_fused", ctx);

  const auto t_base = baseline->runBatch(batch);
  const auto t_pgas = pgas->runBatch(batch);
  baseline->finish();
  pgas->finish();

  printf("NCCL-style baseline: %s  (compute %s + comm %s + sync/unpack %s)\n",
         t_base.total.toString().c_str(),
         t_base.compute_phase.toString().c_str(),
         t_base.communication().toString().c_str(),
         t_base.syncUnpack().toString().c_str());
  printf("PGAS fused:          %s  (single fused phase)\n",
         t_pgas.total.toString().c_str());

  // 4. The outputs are identical — the schemes differ only in when and
  //    how the bytes move.
  bool identical = true;
  for (int g = 0; g < builder.system().numGpus(); ++g) {
    const auto a = baseline->output(g).span();
    const auto b = pgas->output(g).span();
    const auto n = layer.sharding().outputElements(g, spec.dim);
    for (std::int64_t i = 0; i < n; ++i) {
      identical &= (a[static_cast<std::size_t>(i)] ==
                    b[static_cast<std::size_t>(i)]);
    }
  }
  printf("outputs identical across schemes: %s\n",
         identical ? "yes" : "NO (bug!)");

  // Peek at one pooled embedding: sample 0, table 2 lives in GPU 0's
  // mini-batch output.
  const auto out = pgas->output(0).span();
  printf("embedding(sample 0, table 2) = [");
  for (int c = 0; c < spec.dim; ++c) {
    printf("%s%.4f", c ? ", " : "",
           out[static_cast<std::size_t>(
               layer.sharding().outputIndex(0, 2, c, spec.dim))]);
  }
  printf("]\n");
  return identical ? 0 : 1;
}

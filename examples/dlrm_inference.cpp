// Full DLRM inference (paper Figs 1 and 4): dense features through the
// top MLP, sparse features through the sharded EMB layer, dot-product
// interaction, bottom MLP, sigmoid — on a simulated 4-GPU machine, with
// the data-parallel MLP overlapping the model-parallel EMB retrieval.
//
// Functional mode: the actual click-probability predictions are computed
// and shown to be identical under both retrieval schemes.
//
//   $ ./dlrm_inference [--gpus 4] [--batches 5]
#include <cstdio>
#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "dlrm/pipeline.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "util/cli.hpp"

using namespace pgasemb;

namespace {

struct Stack {
  gpu::MultiGpuSystem system;
  fabric::Fabric fabric;
  collective::Communicator comm;
  pgas::PgasRuntime runtime;
  emb::ShardedEmbeddingLayer layer;

  Stack(int gpus, const emb::EmbLayerSpec& spec)
      : system(config(gpus)),
        fabric(system.simulator(),
               std::make_unique<fabric::NvlinkAllToAllTopology>(
                   gpus, fabric::LinkParams{})),
        comm(system, fabric),
        runtime(system, fabric),
        layer(system, spec) {}

  static gpu::SystemConfig config(int gpus) {
    gpu::SystemConfig cfg;
    cfg.num_gpus = gpus;
    cfg.memory_capacity_bytes = 1 << 30;
    cfg.mode = gpu::ExecutionMode::kFunctional;
    return cfg;
  }
};

}  // namespace

int main(int argc, char** argv) {
  CliParser cli("Full DLRM inference on a simulated multi-GPU machine.");
  cli.addInt("gpus", 4, "number of simulated GPUs");
  cli.addInt("batches", 5, "inference batches to run");
  if (!cli.parse(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));

  emb::EmbLayerSpec spec;
  spec.total_tables = 8;
  spec.rows_per_table = 5000;
  spec.dim = 16;
  spec.batch_size = 32;
  spec.min_pooling = 0;  // some samples have NULL sparse inputs
  spec.max_pooling = 8;
  spec.seed = 0x90;

  dlrm::DlrmConfig model_cfg;
  model_cfg.dense_dim = 13;
  model_cfg.top_mlp = {64, spec.dim};
  model_cfg.bottom_mlp = {64, 16, 1};

  printf("DLRM inference: %d GPUs, %lld tables x %lld rows, dim %d, "
         "batch %lld\n\n",
         gpus, static_cast<long long>(spec.total_tables),
         static_cast<long long>(spec.rows_per_table), spec.dim,
         static_cast<long long>(spec.batch_size));

  std::vector<float> first_preds[2];
  SimTime emb_time[2], total_time[2];
  for (const bool use_pgas : {false, true}) {
    Stack stack(gpus, spec);
    std::unique_ptr<core::EmbeddingRetriever> retriever;
    if (use_pgas) {
      retriever = std::make_unique<core::PgasFusedRetriever>(
          stack.layer, stack.runtime, core::PgasRetrieverOptions{});
    } else {
      retriever = std::make_unique<core::CollectiveRetriever>(stack.layer,
                                                              stack.comm);
    }
    dlrm::DlrmModel model(model_cfg, stack.layer);
    dlrm::InferencePipeline pipeline(model, *retriever);

    Rng rng(0x2024);
    SimTime emb_sum = SimTime::zero(), total_sum = SimTime::zero();
    for (int b = 0; b < batches; ++b) {
      const auto sparse =
          emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
      const auto dense = dlrm::DenseBatch::generateUniform(
          spec.batch_size, model_cfg.dense_dim, rng);
      const auto r = pipeline.runBatch(dense, sparse);
      emb_sum += r.emb.total;
      total_sum += r.batch_total;
      if (b == 0) {
        for (const auto& per_gpu : pipeline.predictions()) {
          auto& dst = first_preds[use_pgas ? 1 : 0];
          dst.insert(dst.end(), per_gpu.begin(), per_gpu.end());
        }
      }
    }
    emb_time[use_pgas ? 1 : 0] = emb_sum;
    total_time[use_pgas ? 1 : 0] = total_sum;
    printf("%-14s EMB layer %s / batch, end-to-end %s / batch\n",
           retriever->name().c_str(),
           (emb_sum / batches).toString().c_str(),
           (total_sum / batches).toString().c_str());
  }

  printf("\nEMB-layer speedup (PGAS over baseline): %.2fx\n",
         emb_time[0] / emb_time[1]);
  printf("end-to-end speedup:                     %.2fx\n",
         total_time[0] / total_time[1]);

  printf("\nfirst batch, first 8 predictions (click probabilities):\n");
  printf("  baseline:");
  for (int i = 0; i < 8; ++i) printf(" %.4f", first_preds[0][static_cast<std::size_t>(i)]);
  printf("\n  pgas:    ");
  for (int i = 0; i < 8; ++i) printf(" %.4f", first_preds[1][static_cast<std::size_t>(i)]);
  const bool same = first_preds[0] == first_preds[1];
  printf("\n  identical: %s\n", same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}

// Full DLRM inference (paper Figs 1 and 4): dense features through the
// top MLP, sparse features through the sharded EMB layer, dot-product
// interaction, bottom MLP, sigmoid — on a simulated 4-GPU machine, with
// the data-parallel MLP overlapping the model-parallel EMB retrieval.
//
// Functional mode: the actual click-probability predictions are computed
// and shown to be identical under both retrieval schemes. The system is
// assembled by engine::SystemBuilder and the retrieval backends come
// from the registry by name.
//
//   $ ./dlrm_inference [--gpus 4] [--batches 5]
#include <cstdio>
#include <memory>

#include "dlrm/pipeline.hpp"
#include "engine/system_builder.hpp"
#include "util/cli.hpp"

using namespace pgasemb;

int main(int argc, char** argv) {
  CliParser cli("Full DLRM inference on a simulated multi-GPU machine.");
  cli.addInt("gpus", 4, "number of simulated GPUs");
  cli.addInt("batches", 5, "inference batches to run");
  if (!cli.parseOrExit(argc, argv)) return 0;
  const int gpus = static_cast<int>(cli.getInt("gpus"));
  const int batches = static_cast<int>(cli.getInt("batches"));

  engine::ExperimentConfig cfg;
  cfg.num_gpus = gpus;
  cfg.device_memory_bytes = 1 << 30;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.layer.total_tables = 8;
  cfg.layer.rows_per_table = 5000;
  cfg.layer.dim = 16;
  cfg.layer.batch_size = 32;
  cfg.layer.min_pooling = 0;  // some samples have NULL sparse inputs
  cfg.layer.max_pooling = 8;
  cfg.layer.seed = 0x90;
  const auto& spec = cfg.layer;

  dlrm::DlrmConfig model_cfg;
  model_cfg.dense_dim = 13;
  model_cfg.top_mlp = {64, spec.dim};
  model_cfg.bottom_mlp = {64, 16, 1};

  printf("DLRM inference: %d GPUs, %lld tables x %lld rows, dim %d, "
         "batch %lld\n\n",
         gpus, static_cast<long long>(spec.total_tables),
         static_cast<long long>(spec.rows_per_table), spec.dim,
         static_cast<long long>(spec.batch_size));

  const std::vector<std::string> schemes{"nccl_collective", "pgas_fused"};
  std::vector<float> first_preds[2];
  SimTime emb_time[2], total_time[2];
  for (std::size_t s = 0; s < schemes.size(); ++s) {
    engine::SystemBuilder builder(cfg);
    auto retriever = core::RetrieverRegistry::instance().create(
        schemes[s], builder.context());
    dlrm::DlrmModel model(model_cfg, builder.layer());
    dlrm::InferencePipeline pipeline(model, *retriever);

    Rng rng(0x2024);
    SimTime emb_sum = SimTime::zero(), total_sum = SimTime::zero();
    for (int b = 0; b < batches; ++b) {
      const auto sparse =
          emb::SparseBatch::generateUniform(spec.batchSpec(), rng);
      const auto dense = dlrm::DenseBatch::generateUniform(
          spec.batch_size, model_cfg.dense_dim, rng);
      const auto r = pipeline.runBatch(dense, sparse);
      emb_sum += r.emb.total;
      total_sum += r.batch_total;
      if (b == 0) {
        for (const auto& per_gpu : pipeline.predictions()) {
          auto& dst = first_preds[s];
          dst.insert(dst.end(), per_gpu.begin(), per_gpu.end());
        }
      }
    }
    emb_sum += retriever->finish();
    emb_time[s] = emb_sum;
    total_time[s] = total_sum;
    printf("%-14s EMB layer %s / batch, end-to-end %s / batch\n",
           retriever->name().c_str(),
           (emb_sum / batches).toString().c_str(),
           (total_sum / batches).toString().c_str());
  }

  printf("\nEMB-layer speedup (PGAS over baseline): %.2fx\n",
         emb_time[0] / emb_time[1]);
  printf("end-to-end speedup:                     %.2fx\n",
         total_time[0] / total_time[1]);

  printf("\nfirst batch, first 8 predictions (click probabilities):\n");
  printf("  baseline:");
  for (int i = 0; i < 8; ++i) printf(" %.4f", first_preds[0][static_cast<std::size_t>(i)]);
  printf("\n  pgas:    ");
  for (int i = 0; i < 8; ++i) printf(" %.4f", first_preds[1][static_cast<std::size_t>(i)]);
  const bool same = first_preds[0] == first_preds[1];
  printf("\n  identical: %s\n", same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}

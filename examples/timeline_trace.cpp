// Timeline example: record a Chrome-trace (chrome://tracing / Perfetto)
// of one inference batch under each retrieval scheme.
//
// Open the produced JSON files in chrome://tracing: the baseline shows
// kernel -> idle wire -> burst -> unpack; the PGAS trace shows wire
// flows tiling the whole kernel span with a short quiet tail.
//
//   $ ./timeline_trace
//   wrote trace_baseline.json, trace_pgas.json
#include <cstdio>
#include <memory>

#include "collective/communicator.hpp"
#include "core/collective_retriever.hpp"
#include "core/pgas_retriever.hpp"
#include "fabric/fabric.hpp"
#include "pgas/runtime.hpp"
#include "trace/chrome_trace.hpp"

using namespace pgasemb;

int main() {
  emb::EmbLayerSpec spec;  // moderate timing-only workload, 4 GPUs
  spec.total_tables = 32;
  spec.rows_per_table = 1'000'000;
  spec.dim = 64;
  spec.batch_size = 16384;
  spec.min_pooling = 1;
  spec.max_pooling = 64;
  spec.seed = 0x7717;

  for (const bool use_pgas : {false, true}) {
    gpu::SystemConfig sys_cfg;
    sys_cfg.num_gpus = 4;
    sys_cfg.mode = gpu::ExecutionMode::kTimingOnly;
    gpu::MultiGpuSystem system(sys_cfg);
    fabric::Fabric fabric(
        system.simulator(),
        std::make_unique<fabric::NvlinkAllToAllTopology>(
            4, fabric::LinkParams{}));
    collective::Communicator comm(system, fabric);
    pgas::PgasRuntime runtime(system, fabric);
    emb::ShardedEmbeddingLayer layer(system, spec);

    trace::ChromeTraceRecorder recorder;
    recorder.attach(system, fabric);

    const auto batch = emb::SparseBatch::statistical(spec.batchSpec());
    SimTime total;
    if (use_pgas) {
      core::PgasRetrieverOptions opts;
      opts.slices = 64;  // keep the trace readable
      core::PgasFusedRetriever retriever(layer, runtime, opts);
      total = retriever.runBatch(batch).total;
    } else {
      core::CollectiveRetriever retriever(layer, comm);
      total = retriever.runBatch(batch).total;
    }

    const std::string path =
        use_pgas ? "trace_pgas.json" : "trace_baseline.json";
    recorder.writeFile(path);
    printf("%-22s batch %s, %zu kernel spans, %zu wire flows -> %s\n",
           use_pgas ? "pgas_fused:" : "nccl_baseline:",
           total.toString().c_str(), recorder.kernelSpanCount(),
           recorder.flowCount(), path.c_str());
    recorder.detach();
  }
  printf("\nopen the JSON files in chrome://tracing or ui.perfetto.dev\n");
  return 0;
}

// Timeline example: record a Chrome-trace (chrome://tracing / Perfetto)
// of one inference batch under each retrieval scheme.
//
// Open the produced JSON files in chrome://tracing: the baseline shows
// kernel -> idle wire -> burst -> unpack; the PGAS trace shows wire
// flows tiling the whole kernel span with a short quiet tail.
//
//   $ ./timeline_trace
//   wrote trace_nccl_collective.json, trace_pgas_fused.json
#include <cstdio>
#include <memory>

#include "engine/system_builder.hpp"
#include "trace/chrome_trace.hpp"

using namespace pgasemb;

int main() {
  engine::ExperimentConfig cfg;  // moderate timing-only workload, 4 GPUs
  cfg.num_gpus = 4;
  cfg.layer.total_tables = 32;
  cfg.layer.rows_per_table = 1'000'000;
  cfg.layer.dim = 64;
  cfg.layer.batch_size = 16384;
  cfg.layer.min_pooling = 1;
  cfg.layer.max_pooling = 64;
  cfg.layer.seed = 0x7717;
  cfg.pgas_slices = 64;  // keep the trace readable

  engine::SystemBuilder builder(cfg);
  for (const std::string scheme : {"nccl_collective", "pgas_fused"}) {
    builder.reset();

    trace::ChromeTraceRecorder recorder;
    recorder.attach(builder.system(), builder.fabric());

    auto retriever = core::RetrieverRegistry::instance().create(
        scheme, builder.context());
    const auto batch =
        emb::SparseBatch::statistical(cfg.layer.batchSpec());
    SimTime total = retriever->runBatch(batch).total;
    total += retriever->finish();

    const std::string path = "trace_" + scheme + ".json";
    recorder.writeFile(path);
    printf("%-22s batch %s, %zu kernel spans, %zu wire flows -> %s\n",
           (scheme + ":").c_str(), total.toString().c_str(),
           recorder.kernelSpanCount(), recorder.flowCount(), path.c_str());
    recorder.detach();
  }
  printf("\nopen the JSON files in chrome://tracing or ui.perfetto.dev\n");
  return 0;
}

// Training-step scenario (paper §V future work): forward retrieval plus
// the EMB backward pass, comparing the collective gradient exchange
// (all-to-all + multi-round ring shifts + per-round syncs) against PGAS
// remote atomic adds.
//
// Functional mode on a small model: shows the embedding weights actually
// moving under SGD and that both schemes produce the same updated
// tables. The forward retriever comes from the registry; the system is
// assembled by engine::SystemBuilder.
//
//   $ ./backward_training_step
#include <cstdio>
#include <memory>

#include "dlrm/backward.hpp"
#include "engine/system_builder.hpp"

using namespace pgasemb;

int main() {
  engine::ExperimentConfig cfg;
  cfg.num_gpus = 3;
  cfg.device_memory_bytes = 256 << 20;
  cfg.mode = gpu::ExecutionMode::kFunctional;
  cfg.layer.total_tables = 6;
  cfg.layer.rows_per_table = 500;
  cfg.layer.dim = 8;
  cfg.layer.batch_size = 16;
  cfg.layer.min_pooling = 1;
  cfg.layer.max_pooling = 4;
  cfg.layer.seed = 0x7ea;
  const auto& spec = cfg.layer;

  printf("Training step on 3 simulated GPUs: forward retrieval + EMB "
         "backward\n\n");

  engine::SystemBuilder builder(cfg);
  float sample_weight[2] = {0.0f, 0.0f};
  SimTime backward_time[2];
  for (const bool use_pgas : {false, true}) {
    builder.reset();
    auto& layer = builder.layer();

    Rng rng(0x515);
    const auto batch =
        emb::SparseBatch::generateUniform(spec.batchSpec(), rng);

    // Forward pass (PGAS fused retrieval either way — the comparison
    // here is the backward scheme).
    auto forward = core::RetrieverRegistry::instance().create(
        "pgas_fused", builder.context());
    const auto fwd = forward->runBatch(batch);
    forward->finish();

    const float before = layer.table(0).weight(0, 0);
    dlrm::EmbBackwardEngine engine(layer, builder.comm(), builder.runtime(),
                                   /*learning_rate=*/0.05f);
    const auto bwd = engine.runBatch(
        batch, use_pgas ? dlrm::BackwardScheme::kPgasAtomics
                        : dlrm::BackwardScheme::kCollective);
    const float after = layer.table(0).weight(0, 0);

    backward_time[use_pgas ? 1 : 0] = bwd.total;
    sample_weight[use_pgas ? 1 : 0] = after;
    printf("%-22s forward %s, backward %s (grad %s, comm %s, aggregate "
           "%s, apply %s)\n",
           use_pgas ? "pgas_remote_atomics:" : "collective_rounds:",
           fwd.total.toString().c_str(), bwd.total.toString().c_str(),
           bwd.grad_phase.toString().c_str(),
           bwd.comm_phase.toString().c_str(),
           bwd.aggregate_phase.toString().c_str(),
           bwd.apply_phase.toString().c_str());
    printf("%-22s table0[0,0]: %.6f -> %.6f\n", "", before, after);
  }

  printf("\nbackward speedup (PGAS over collective): %.2fx\n",
         backward_time[0] / backward_time[1]);
  printf("updated weights identical across schemes: %s\n",
         sample_weight[0] == sample_weight[1] ? "yes" : "NO (bug!)");
  return sample_weight[0] == sample_weight[1] ? 0 : 1;
}

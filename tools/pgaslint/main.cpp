// pgaslint CLI — lints the repo's C++ sources against the project
// invariants (see lint.hpp / DESIGN.md §11).
//
//   pgaslint [--allowlist FILE] [--rules a,b] [--list-rules] PATH...
//
// PATHs are files or directories (recursed for *.cpp / *.hpp) and
// should be repo-relative — the rule scoping keys off the path prefix,
// so run it from the repository root:
//
//   pgaslint --allowlist tools/pgaslint/pure_kernels.allow src bench tests
//
// Exit codes: 0 clean, 1 violations found, 2 usage / IO error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "pgaslint/lint.hpp"

namespace {

namespace fs = std::filesystem;

bool readFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool lintableExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

std::vector<std::string> splitCommas(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--allowlist FILE] [--rules a,b] [--list-rules] "
               "PATH...\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  pgaslint::Options opts;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const auto& rule : pgaslint::allRules()) {
        std::printf("%-20s %s\n", rule.c_str(),
                    pgaslint::ruleDescription(rule).c_str());
      }
      return 0;
    }
    if (arg == "--allowlist") {
      if (++i >= argc) return usage(argv[0]);
      std::string content;
      if (!readFile(argv[i], &content)) {
        std::fprintf(stderr, "pgaslint: cannot read allowlist '%s'\n",
                     argv[i]);
        return 2;
      }
      opts.pure_kernels = pgaslint::parseAllowlist(content);
    } else if (arg == "--rules") {
      if (++i >= argc) return usage(argv[0]);
      opts.rules = splitCommas(argv[i]);
      for (const auto& rule : opts.rules) {
        if (pgaslint::ruleDescription(rule).empty()) {
          std::fprintf(stderr, "pgaslint: unknown rule '%s'\n", rule.c_str());
          return 2;
        }
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage(argv[0]);

  // Expand the roots into a sorted file list (determinism: the lint
  // tool practices what it enforces).
  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (fs::recursive_directory_iterator it(root, ec), end;
           it != end && !ec; it.increment(ec)) {
        if (it->is_regular_file(ec) && lintableExtension(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
    } else {
      std::fprintf(stderr, "pgaslint: no such file or directory '%s'\n",
                   root.c_str());
      return 2;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  int violations = 0;
  int dirty_files = 0;
  for (const auto& file : files) {
    std::string content;
    if (!readFile(file, &content)) {
      std::fprintf(stderr, "pgaslint: cannot read '%s'\n", file.c_str());
      return 2;
    }
    const auto findings = pgaslint::lintFile(file, content, opts);
    if (!findings.empty()) ++dirty_files;
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
      ++violations;
    }
  }
  if (violations > 0) {
    std::printf("pgaslint: %d violation(s) in %d file(s) (%zu scanned)\n",
                violations, dirty_files, files.size());
    return 1;
  }
  std::printf("pgaslint: clean (%zu files, %zu rules)\n", files.size(),
              pgaslint::allRules().size());
  return 0;
}

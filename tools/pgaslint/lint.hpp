// pgaslint — project-specific static analysis for the pgasemb simulator.
//
// A lightweight C++ lexer/matcher (no libclang) that enforces the
// repo's determinism and declared-effects invariants as named,
// suppressible rules.  It is deliberately a *project* linter: the rules
// encode conventions of this codebase (seed-determinism, the PR 6
// EventFn invariant, simsan's declared-effects contract), not general
// C++ style.  See DESIGN.md §11 for the rule catalogue.
//
// Suppression syntax: a comment `// pgaslint:allow(<rule>[,<rule>...])`
// silences the named rules on its own line and on the next line, so it
// works both trailing the offending statement and on the line above it.
#pragma once

#include <string>
#include <vector>

namespace pgaslint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

struct Options {
  /// Kernel-name prefixes exempt from the kernel-mem-effects rule
  /// (pure-compute kernels that read/write no tracked device memory).
  std::vector<std::string> pure_kernels;
  /// When non-empty, only these rules run.
  std::vector<std::string> rules;
};

/// All rule names, in report order.
const std::vector<std::string>& allRules();

/// One-line description of a rule (empty for unknown names).
std::string ruleDescription(const std::string& rule);

/// True when `rule` is checked for a file at repo-relative `path`.
/// Rules are scoped: the nondeterminism rules cover src/ only (benches
/// legitimately measure wall-clock), func-hot-path covers src/sim/, and
/// ptr-key-ordered covers src/, bench/, tests/, and tools/.
bool ruleAppliesTo(const std::string& rule, const std::string& path);

/// Lints one file's contents. `path` should be repo-relative: it picks
/// which rules apply and is echoed in findings.
std::vector<Finding> lintFile(const std::string& path,
                              const std::string& content,
                              const Options& opts);

/// Parses a pure-kernel allowlist (one name prefix per line; blank
/// lines and lines starting with '#' are ignored).
std::vector<std::string> parseAllowlist(const std::string& content);

}  // namespace pgaslint

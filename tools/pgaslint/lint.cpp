#include "pgaslint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <utility>

namespace pgaslint {
namespace {

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// The lexed view of one file: `code` is a same-length copy with
/// comments and literal *bodies* blanked to spaces (offsets preserved,
/// ordinary string literals keep their quote characters), `raw` is the
/// untouched input (for reading literal contents), and `allows` is the
/// suppression table collected from `pgaslint:allow(...)` comments.
struct Lexed {
  std::string code;
  const std::string* raw = nullptr;
  std::vector<std::size_t> line_starts;
  // (line, rule): `rule` is suppressed on `line` and on `line + 1`.
  std::vector<std::pair<int, std::string>> allows;

  int lineOf(std::size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(), offset);
    return static_cast<int>(it - line_starts.begin());
  }

  bool suppressed(const std::string& rule, int line) const {
    for (const auto& [l, r] : allows) {
      if (r == rule && (l == line || l + 1 == line)) return true;
    }
    return false;
  }
};

/// Records every `pgaslint:allow(a,b)` inside a comment's text.
void collectAllows(const std::string& comment, int line, Lexed* out) {
  static const std::string kTag = "pgaslint:allow(";
  std::size_t at = comment.find(kTag);
  while (at != std::string::npos) {
    const std::size_t open = at + kTag.size();
    const std::size_t close = comment.find(')', open);
    if (close == std::string::npos) break;
    std::string rule;
    for (std::size_t i = open; i <= close; ++i) {
      const char c = comment[i];
      if (c == ',' || c == ')') {
        if (!rule.empty()) out->allows.emplace_back(line, rule);
        rule.clear();
      } else if (c != ' ') {
        rule += c;
      }
    }
    at = comment.find(kTag, close);
  }
}

void blank(std::string* s, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < s->size(); ++i) {
    if ((*s)[i] != '\n') (*s)[i] = ' ';
  }
}

Lexed lex(const std::string& s) {
  Lexed out;
  out.code = s;
  out.raw = &s;
  out.line_starts.push_back(0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\n') out.line_starts.push_back(i + 1);
  }

  const std::size_t n = s.size();
  std::size_t i = 0;
  while (i < n) {
    const char c = s[i];
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t end = i;
      while (end < n && s[end] != '\n') ++end;
      collectAllows(s.substr(i, end - i), out.lineOf(i), &out);
      blank(&out.code, i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t end = s.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      // A block comment's allow() anchors to the line the comment
      // *ends* on (and the next), matching the trailing/preceding-line
      // conventions.
      collectAllows(s.substr(i, end - i), out.lineOf(end - 1), &out);
      blank(&out.code, i, end);
      i = end;
    } else if (c == '"') {
      // Raw string literal? (R"delim(...)delim" — blanked entirely; no
      // lint-relevant literal is ever raw.)
      const bool raw = i > 0 && s[i - 1] == 'R' &&
                       (i < 2 || !isIdentChar(s[i - 2]) ||
                        s[i - 2] == 'u' || s[i - 2] == 'U' ||
                        s[i - 2] == 'L' || s[i - 2] == '8');
      if (raw) {
        std::size_t p = i + 1;
        std::string delim;
        while (p < n && s[p] != '(') delim += s[p++];
        const std::string closer = ")" + delim + "\"";
        std::size_t end = s.find(closer, p);
        end = (end == std::string::npos) ? n : end + closer.size();
        blank(&out.code, i - 1, end);
        i = end;
      } else {
        // Ordinary literal: keep the quotes (rules use them to locate
        // the literal's extent in `raw`) but blank the body.
        std::size_t p = i + 1;
        while (p < n && s[p] != '"') {
          if (s[p] == '\\' && p + 1 < n) ++p;
          if (s[p] == '\n') break;  // unterminated — bail at EOL
          ++p;
        }
        blank(&out.code, i + 1, p);
        i = (p < n) ? p + 1 : n;
      }
    } else if (c == '\'') {
      // Digit separator (1'000'000) — not a literal.
      if (i > 0 && std::isalnum(static_cast<unsigned char>(s[i - 1])) != 0) {
        ++i;
        continue;
      }
      std::size_t p = i + 1;
      while (p < n && s[p] != '\'') {
        if (s[p] == '\\' && p + 1 < n) ++p;
        ++p;
      }
      blank(&out.code, i + 1, p);
      i = (p < n) ? p + 1 : n;
    } else {
      ++i;
    }
  }
  return out;
}

/// Next whole-word occurrence of `w` in `code` at or after `from`.
std::size_t findWord(const std::string& code, const std::string& w,
                     std::size_t from) {
  std::size_t at = code.find(w, from);
  while (at != std::string::npos) {
    const bool left_ok = at == 0 || !isIdentChar(code[at - 1]);
    const std::size_t end = at + w.size();
    const bool right_ok = end >= code.size() || !isIdentChar(code[end]);
    if (left_ok && right_ok) return at;
    at = code.find(w, at + 1);
  }
  return std::string::npos;
}

std::size_t skipSpace(const std::string& code, std::size_t i) {
  while (i < code.size() &&
         (code[i] == ' ' || code[i] == '\t' || code[i] == '\n')) {
    ++i;
  }
  return i;
}

std::size_t prevNonSpace(const std::string& code, std::size_t i) {
  while (i > 0) {
    --i;
    if (code[i] != ' ' && code[i] != '\t' && code[i] != '\n') return i;
  }
  return std::string::npos;
}

/// From the '<' at `open`, the offset just past the matching '>' — or
/// npos when this is a comparison, not a template argument list
/// (heuristic: a ';', '{' or '}' intervenes).
std::size_t matchAngle(const std::string& code, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '<') {
      ++depth;
    } else if (c == '>') {
      --depth;
      if (depth == 0) return i + 1;
    } else if (c == ';' || c == '{' || c == '}') {
      return std::string::npos;
    }
  }
  return std::string::npos;
}

void addFinding(std::vector<Finding>* out, const Lexed& lx,
                const std::string& path, std::size_t offset,
                const std::string& rule, std::string message) {
  const int line = lx.lineOf(offset);
  if (lx.suppressed(rule, line)) return;
  out->push_back(Finding{path, line, rule, std::move(message)});
}

// ---- rule: nondet-rand --------------------------------------------------

void ruleNondetRand(const std::string& path, const Lexed& lx,
                    std::vector<Finding>* out) {
  static const char* kBanned[] = {"rand",    "srand",   "rand_r",
                                  "drand48", "lrand48", "random_device",
                                  "getentropy"};
  for (const char* w : kBanned) {
    for (std::size_t at = findWord(lx.code, w, 0); at != std::string::npos;
         at = findWord(lx.code, w, at + 1)) {
      addFinding(out, lx, path, at, "nondet-rand",
                 std::string("banned nondeterminism API '") + w +
                     "' — sim results must be seed-deterministic; draw "
                     "from a seeded std::mt19937 instead");
    }
  }
}

// ---- rule: nondet-clock -------------------------------------------------

void ruleNondetClock(const std::string& path, const Lexed& lx,
                     std::vector<Finding>* out) {
  static const char* kBanned[] = {"system_clock",           "steady_clock",
                                  "high_resolution_clock",  "__DATE__",
                                  "__TIME__",               "__TIMESTAMP__"};
  for (const char* w : kBanned) {
    for (std::size_t at = findWord(lx.code, w, 0); at != std::string::npos;
         at = findWord(lx.code, w, at + 1)) {
      addFinding(out, lx, path, at, "nondet-clock",
                 std::string("wall-clock source '") + w +
                     "' in simulator sources — simulated time comes from "
                     "sim::Simulator::now(), never the host clock");
    }
  }
}

// ---- rule: unordered-iter -----------------------------------------------

void ruleUnorderedIter(const std::string& path, const Lexed& lx,
                       std::vector<Finding>* out) {
  // Pass 1: names declared (or taken as parameters) with an unordered
  // container type anywhere in this file.
  std::vector<std::string> names;
  for (const char* ty : {"unordered_map", "unordered_set",
                         "unordered_multimap", "unordered_multiset"}) {
    const std::string type_name = ty;
    for (std::size_t at = findWord(lx.code, type_name, 0);
         at != std::string::npos;
         at = findWord(lx.code, type_name, at + 1)) {
      std::size_t p = skipSpace(lx.code, at + type_name.size());
      if (p >= lx.code.size() || lx.code[p] != '<') continue;
      p = matchAngle(lx.code, p);
      if (p == std::string::npos) continue;
      p = skipSpace(lx.code, p);
      while (p < lx.code.size() && (lx.code[p] == '&' || lx.code[p] == '*')) {
        p = skipSpace(lx.code, p + 1);
      }
      std::string name;
      while (p < lx.code.size() && isIdentChar(lx.code[p])) {
        name += lx.code[p++];
      }
      if (name.empty() || name == "const") continue;
      if (std::find(names.begin(), names.end(), name) == names.end()) {
        names.push_back(name);
      }
    }
  }
  // Pass 2: iteration over those names — a range-for (`: name)`) or a
  // direct `.begin(`.  Keyed access (find/count/operator[]) stays
  // allowed: only the *visit order* is implementation-defined.
  for (const auto& name : names) {
    for (std::size_t at = findWord(lx.code, name, 0); at != std::string::npos;
         at = findWord(lx.code, name, at + 1)) {
      const std::size_t prev = prevNonSpace(lx.code, at);
      const std::size_t next = skipSpace(lx.code, at + name.size());
      const bool range_for =
          prev != std::string::npos && lx.code[prev] == ':' &&
          (prev == 0 || lx.code[prev - 1] != ':') && next < lx.code.size() &&
          lx.code[next] == ')';
      const bool begin_call = next + 6 <= lx.code.size() &&
                              lx.code.compare(next, 6, ".begin") == 0;
      if (range_for || begin_call) {
        addFinding(out, lx, path, at, "unordered-iter",
                   "iteration over unordered container '" + name +
                       "' — the visit order is implementation-defined and "
                       "leaks into reports/CSVs/event schedules; iterate a "
                       "sorted copy or key an ordered container");
      }
    }
  }
}

// ---- rule: func-hot-path ------------------------------------------------

void ruleFuncHotPath(const std::string& path, const Lexed& lx,
                     std::vector<Finding>* out) {
  for (std::size_t at = findWord(lx.code, "function", 0);
       at != std::string::npos; at = findWord(lx.code, "function", at + 1)) {
    // Only the `std::function` template, not the word.
    if (at < 2 || lx.code.compare(at - 2, 2, "::") != 0) continue;
    const std::size_t q = prevNonSpace(lx.code, at - 2);
    if (q == std::string::npos || q < 2 ||
        lx.code.compare(q - 2, 3, "std") != 0) {
      continue;
    }
    addFinding(out, lx, path, at, "func-hot-path",
               "std::function in the sim-core hot path — event callbacks "
               "use the small-buffer sim::EventFn (the PR 6 invariant: no "
               "per-event heap allocation)");
  }
}

// ---- rule: ptr-key-ordered ----------------------------------------------

void rulePtrKeyOrdered(const std::string& path, const Lexed& lx,
                       std::vector<Finding>* out) {
  for (const char* ty : {"map", "set", "multimap", "multiset"}) {
    const std::string type_name = ty;
    for (std::size_t at = findWord(lx.code, type_name, 0);
         at != std::string::npos;
         at = findWord(lx.code, type_name, at + 1)) {
      // Require the std:: qualifier so member names and the project's
      // own types stay out of scope.
      if (at < 5 || lx.code.compare(at - 2, 2, "::") != 0 ||
          lx.code.compare(at - 5, 3, "std") != 0) {
        continue;
      }
      std::size_t p = skipSpace(lx.code, at + type_name.size());
      if (p >= lx.code.size() || lx.code[p] != '<') continue;
      const std::size_t close = matchAngle(lx.code, p);
      if (close == std::string::npos) continue;
      // First template argument: up to a depth-0 comma (or the close).
      std::size_t arg_end = close - 1;
      int depth = 0;
      for (std::size_t i = p + 1; i + 1 < close; ++i) {
        const char c = lx.code[i];
        if (c == '<' || c == '(') {
          ++depth;
        } else if (c == '>' || c == ')') {
          --depth;
        } else if (c == ',' && depth == 0) {
          arg_end = i;
          break;
        }
      }
      std::string arg = lx.code.substr(p + 1, arg_end - p - 1);
      if (arg.find('*') == std::string::npos) continue;
      // Normalize whitespace for the message.
      std::string flat;
      for (const char c : arg) {
        if (c == '\n' || c == '\t') continue;
        if (c == ' ' && (flat.empty() || flat.back() == ' ')) continue;
        flat += c;
      }
      addFinding(out, lx, path, at, "ptr-key-ordered",
                 std::string("pointer-keyed ordered container 'std::") + ty +
                     "<" + flat +
                     ", ...>' — iteration order follows allocation "
                     "addresses, which vary run to run; key by a stable id "
                     "(or dedup with a vector)");
    }
  }
}

// ---- rule: kernel-mem-effects -------------------------------------------

/// Top-level brace regions (function/class definitions), treating
/// namespace braces as transparent so a file is not one region.
std::vector<std::pair<std::size_t, std::size_t>> braceRegions(
    const std::string& code) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  std::vector<bool> ns_stack;
  bool pending_namespace = false;
  std::string word;
  int depth = 0;  // non-namespace depth
  std::size_t region_start = 0;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (isIdentChar(c)) {
      word += c;
      continue;
    }
    if (word == "namespace") pending_namespace = true;
    word.clear();
    if (c == ';' && depth == 0) pending_namespace = false;
    if (c == '{') {
      ns_stack.push_back(pending_namespace && depth == 0);
      if (!ns_stack.back()) {
        if (depth == 0) region_start = i;
        ++depth;
      }
      pending_namespace = false;
    } else if (c == '}') {
      if (!ns_stack.empty()) {
        const bool was_ns = ns_stack.back();
        ns_stack.pop_back();
        if (!was_ns && depth > 0) {
          --depth;
          if (depth == 0) regions.emplace_back(region_start, i + 1);
        }
      }
    }
  }
  return regions;
}

void ruleKernelMemEffects(const std::string& path, const Lexed& lx,
                          const Options& opts, std::vector<Finding>* out) {
  const auto regions = braceRegions(lx.code);
  auto regionOf = [&](std::size_t at) {
    for (const auto& r : regions) {
      if (at >= r.first && at < r.second) return r;
    }
    return std::make_pair(std::size_t{0}, lx.code.size());
  };
  for (std::size_t at = findWord(lx.code, "name", 0); at != std::string::npos;
       at = findWord(lx.code, "name", at + 1)) {
    // Match a member assignment `<expr>.name = <rhs>` (not `==`).
    const std::size_t prev = prevNonSpace(lx.code, at);
    if (prev == std::string::npos || lx.code[prev] != '.') continue;
    const std::size_t eq = skipSpace(lx.code, at + 4);
    if (eq >= lx.code.size() || lx.code[eq] != '=' ||
        (eq + 1 < lx.code.size() && lx.code[eq + 1] == '=')) {
      continue;
    }
    const auto [rb, re] = regionOf(at);
    const std::string region = lx.code.substr(rb, re - rb);
    // Only KernelDesc construction sites are in scope.
    if (findWord(region, "KernelDesc", 0) == std::string::npos) continue;
    // Declared effects anywhere in the enclosing definition satisfy
    // the rule.
    if (findWord(region, "mem_effects", 0) != std::string::npos ||
        findWord(region, "put_effects", 0) != std::string::npos) {
      continue;
    }
    // Extract the literal kernel-name prefix, when the RHS is one.
    const std::size_t rhs = skipSpace(lx.code, eq + 1);
    if (rhs < lx.code.size() && lx.code[rhs] == '"') {
      const std::size_t close = lx.code.find('"', rhs + 1);
      if (close != std::string::npos) {
        const std::string literal =
            lx.raw->substr(rhs + 1, close - rhs - 1);
        const bool allowed = std::any_of(
            opts.pure_kernels.begin(), opts.pure_kernels.end(),
            [&](const std::string& prefix) {
              return !prefix.empty() && literal.rfind(prefix, 0) == 0;
            });
        if (allowed) continue;
        addFinding(out, lx, path, at, "kernel-mem-effects",
                   "kernel '" + literal +
                       "' is built without declaring mem_effects — simsan "
                       "cannot see its memory footprint; declare the "
                       "effects, or list the kernel in "
                       "tools/pgaslint/pure_kernels.allow if it is pure "
                       "compute");
        continue;
      }
    }
    addFinding(out, lx, path, at, "kernel-mem-effects",
               "KernelDesc built with a computed name and no mem_effects "
               "declaration — simsan cannot see its memory footprint; "
               "declare the effects or suppress with a rationale");
  }
}

}  // namespace

const std::vector<std::string>& allRules() {
  static const std::vector<std::string> kRules = {
      "nondet-rand",     "nondet-clock",    "unordered-iter",
      "func-hot-path",   "ptr-key-ordered", "kernel-mem-effects",
  };
  return kRules;
}

std::string ruleDescription(const std::string& rule) {
  if (rule == "nondet-rand") {
    return "banned nondeterministic RNG APIs (rand, random_device, ...) in "
           "src/";
  }
  if (rule == "nondet-clock") {
    return "wall-clock sources (system/steady/high_resolution_clock, "
           "__DATE__/__TIME__) in src/";
  }
  if (rule == "unordered-iter") {
    return "iteration over std::unordered_{map,set} in src/ and bench/ "
           "(order leaks into reports and event schedules)";
  }
  if (rule == "func-hot-path") {
    return "std::function in the sim-core hot path (src/sim/) — use "
           "sim::EventFn";
  }
  if (rule == "ptr-key-ordered") {
    return "pointer-keyed std::map/std::set (iteration order follows "
           "allocation addresses)";
  }
  if (rule == "kernel-mem-effects") {
    return "KernelDesc construction without a mem_effects declaration "
           "(checked against the pure-compute allowlist)";
  }
  return "";
}

bool ruleAppliesTo(const std::string& rule, const std::string& path) {
  std::string p = path;
  while (p.rfind("./", 0) == 0) p = p.substr(2);
  const auto under = [&p](const char* dir) {
    const std::string d = std::string(dir) + "/";
    return p.rfind(d, 0) == 0 || p.find("/" + d) != std::string::npos;
  };
  if (rule == "nondet-rand" || rule == "nondet-clock" ||
      rule == "kernel-mem-effects") {
    return under("src");
  }
  if (rule == "unordered-iter") return under("src") || under("bench");
  if (rule == "func-hot-path") return under("src/sim");
  if (rule == "ptr-key-ordered") {
    return under("src") || under("bench") || under("tests") || under("tools");
  }
  return false;
}

std::vector<Finding> lintFile(const std::string& path,
                              const std::string& content,
                              const Options& opts) {
  const Lexed lx = lex(content);
  const auto enabled = [&](const char* rule) {
    if (!opts.rules.empty() &&
        std::find(opts.rules.begin(), opts.rules.end(), rule) ==
            opts.rules.end()) {
      return false;
    }
    return ruleAppliesTo(rule, path);
  };
  std::vector<Finding> out;
  if (enabled("nondet-rand")) ruleNondetRand(path, lx, &out);
  if (enabled("nondet-clock")) ruleNondetClock(path, lx, &out);
  if (enabled("unordered-iter")) ruleUnorderedIter(path, lx, &out);
  if (enabled("func-hot-path")) ruleFuncHotPath(path, lx, &out);
  if (enabled("ptr-key-ordered")) rulePtrKeyOrdered(path, lx, &out);
  if (enabled("kernel-mem-effects")) ruleKernelMemEffects(path, lx, opts, &out);
  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return out;
}

std::vector<std::string> parseAllowlist(const std::string& content) {
  std::vector<std::string> out;
  std::string line;
  for (std::size_t i = 0; i <= content.size(); ++i) {
    if (i == content.size() || content[i] == '\n') {
      // Trim and drop comments / blanks.
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line = line.substr(0, hash);
      while (!line.empty() && (line.back() == ' ' || line.back() == '\r' ||
                               line.back() == '\t')) {
        line.pop_back();
      }
      std::size_t start = 0;
      while (start < line.size() &&
             (line[start] == ' ' || line[start] == '\t')) {
        ++start;
      }
      line = line.substr(start);
      if (!line.empty()) out.push_back(line);
      line.clear();
    } else {
      line += content[i];
    }
  }
  return out;
}

}  // namespace pgaslint
